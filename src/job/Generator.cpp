//===-- job/Generator.cpp - Randomized compound-job workloads -------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "job/Generator.h"
#include "support/Check.h"

#include <cmath>
#include <string>

using namespace cws;

JobGenerator::JobGenerator(WorkloadConfig Config, uint64_t Seed)
    : Config(Config), Rng(Seed) {
  CWS_CHECK(Config.MinTasks >= 2 && Config.MinTasks <= Config.MaxTasks,
            "invalid task count range");
  CWS_CHECK(Config.MaxWidth >= 1, "invalid layer width");
  CWS_CHECK(Config.RefTicksLo >= 1 && Config.RefTicksLo <= Config.RefTicksHi,
            "invalid reference tick range");
  CWS_CHECK(Config.TransferLo >= 0 && Config.TransferLo <= Config.TransferHi,
            "invalid transfer tick range");
  CWS_CHECK(Config.DeadlineSlack > 0.0, "deadline slack must be positive");
}

Job JobGenerator::next(Tick Release) {
  Job J(NextId++);
  auto TaskCount = static_cast<unsigned>(
      Rng.uniformInt(Config.MinTasks, Config.MaxTasks));

  // Partition tasks into layers of width 1..MaxWidth; the layer sequence
  // defines precedence (every task of layer l+1 depends on at least one
  // task of layer l), which guarantees an acyclic connected graph.
  std::vector<std::vector<unsigned>> Layers;
  unsigned Created = 0;
  while (Created < TaskCount) {
    auto Width = static_cast<unsigned>(Rng.uniformInt(
        1, std::min<int64_t>(Config.MaxWidth, TaskCount - Created)));
    std::vector<unsigned> Layer;
    for (unsigned I = 0; I < Width; ++I) {
      Tick Ref = Rng.uniformInt(Config.RefTicksLo, Config.RefTicksHi);
      double Volume = Config.VolumePerRefTick * static_cast<double>(Ref);
      unsigned TaskId =
          J.addTask("T" + std::to_string(Created), Ref, Volume);
      Layer.push_back(TaskId);
      ++Created;
    }
    Layers.push_back(std::move(Layer));
  }

  auto RandomTransfer = [&] {
    return Rng.uniformInt(Config.TransferLo, Config.TransferHi);
  };

  for (size_t L = 1; L < Layers.size(); ++L) {
    const auto &Prev = Layers[L - 1];
    for (unsigned Dst : Layers[L]) {
      // Mandatory parent keeps the job connected.
      unsigned Parent = Prev[Rng.index(Prev.size())];
      J.addEdge(Parent, Dst, RandomTransfer());
      for (unsigned Src : Prev)
        if (Src != Parent && Rng.bernoulli(Config.EdgeDensity))
          J.addEdge(Src, Dst, RandomTransfer());
    }
  }

  J.setRelease(Release);
  double Span = Config.DeadlineSlack *
                static_cast<double>(J.criticalPathRefTicks());
  J.setDeadline(Release + static_cast<Tick>(std::ceil(Span)));
  return J;
}
