//===-- job/Estimates.h - User execution-time estimations -------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The user estimation table of Fig. 2a generalized: for every task and
/// every distinct performance level present in the environment, the
/// estimated execution time T_ij. Strategies sweep estimation levels to
/// generate their supporting schedules; the MS1 modification keeps only
/// the best and worst level, trading coverage for generation cost.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_JOB_ESTIMATES_H
#define CWS_JOB_ESTIMATES_H

#include "job/Job.h"
#include "sim/Time.h"

#include <cstddef>
#include <vector>

namespace cws {

class Grid;

/// The T_ij estimation table for one job over a set of performance
/// levels (fastest level first).
class EstimateGrid {
public:
  /// Builds estimates for \p PerfLevels (must be sorted descending,
  /// non-empty, all positive).
  EstimateGrid(const Job &J, std::vector<double> PerfLevels);

  size_t levels() const { return PerfLevels.size(); }
  double perfAt(size_t Level) const;

  /// Estimated execution ticks of \p TaskId at \p Level.
  Tick ticks(unsigned TaskId, size_t Level) const;

  /// The level indices a strategy of the given coverage uses: all of
  /// them, or just {best, worst} for the reduced MS1 coverage.
  std::vector<size_t> coveredLevels(bool BestWorstOnly) const;

  /// Distinct node performances of \p G, descending.
  static std::vector<double> environmentLevels(const Grid &G);

private:
  std::vector<double> PerfLevels;
  std::vector<std::vector<Tick>> Table; // [task][level]
};

} // namespace cws

#endif // CWS_JOB_ESTIMATES_H
