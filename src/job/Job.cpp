//===-- job/Job.cpp - Compound jobs as information graphs -----------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "job/Job.h"
#include "support/Check.h"

#include <algorithm>

using namespace cws;

unsigned Job::addTask(std::string Name, Tick RefTicks, double Volume) {
  CWS_CHECK(RefTicks > 0, "task needs a positive reference time");
  CWS_CHECK(Volume >= 0.0, "task volume must be non-negative");
  auto TaskId = static_cast<unsigned>(Tasks.size());
  Tasks.push_back({TaskId, std::move(Name), RefTicks, Volume});
  In.emplace_back();
  Out.emplace_back();
  return TaskId;
}

void Job::addEdge(unsigned Src, unsigned Dst, Tick BaseTransfer) {
  CWS_CHECK(Src < Tasks.size() && Dst < Tasks.size(),
            "edge endpoint out of range");
  CWS_CHECK(Src != Dst, "self-dependency is not allowed");
  CWS_CHECK(BaseTransfer >= 0, "negative transfer time");
  size_t EdgeIdx = Edges.size();
  Edges.push_back({Src, Dst, BaseTransfer});
  Out[Src].push_back(EdgeIdx);
  In[Dst].push_back(EdgeIdx);
}

const Task &Job::task(unsigned TaskId) const {
  CWS_CHECK(TaskId < Tasks.size(), "task id out of range");
  return Tasks[TaskId];
}

const DataEdge &Job::edge(size_t EdgeIdx) const {
  CWS_CHECK(EdgeIdx < Edges.size(), "edge index out of range");
  return Edges[EdgeIdx];
}

const std::vector<size_t> &Job::inEdges(unsigned TaskId) const {
  CWS_CHECK(TaskId < In.size(), "task id out of range");
  return In[TaskId];
}

const std::vector<size_t> &Job::outEdges(unsigned TaskId) const {
  CWS_CHECK(TaskId < Out.size(), "task id out of range");
  return Out[TaskId];
}

std::vector<unsigned> Job::sources() const {
  std::vector<unsigned> Result;
  for (const auto &T : Tasks)
    if (In[T.Id].empty())
      Result.push_back(T.Id);
  return Result;
}

std::vector<unsigned> Job::sinks() const {
  std::vector<unsigned> Result;
  for (const auto &T : Tasks)
    if (Out[T.Id].empty())
      Result.push_back(T.Id);
  return Result;
}

std::vector<unsigned> Job::topoOrder() const {
  std::vector<unsigned> InDegree(Tasks.size(), 0);
  for (const auto &E : Edges)
    ++InDegree[E.Dst];
  std::vector<unsigned> Ready;
  for (const auto &T : Tasks)
    if (InDegree[T.Id] == 0)
      Ready.push_back(T.Id);
  std::vector<unsigned> Order;
  Order.reserve(Tasks.size());
  // Kahn's algorithm; Ready is kept as a stack for determinism.
  while (!Ready.empty()) {
    unsigned Next = Ready.back();
    Ready.pop_back();
    Order.push_back(Next);
    for (size_t EdgeIdx : Out[Next])
      if (--InDegree[Edges[EdgeIdx].Dst] == 0)
        Ready.push_back(Edges[EdgeIdx].Dst);
  }
  if (Order.size() != Tasks.size())
    return {};
  return Order;
}

bool Job::isAcyclic() const {
  return Tasks.empty() || !topoOrder().empty();
}

Tick Job::criticalPathRefTicks() const {
  std::vector<unsigned> Order = topoOrder();
  CWS_CHECK(Order.size() == Tasks.size() || Tasks.empty(),
            "critical path of a cyclic graph");
  std::vector<Tick> Longest(Tasks.size(), 0);
  Tick Best = 0;
  for (unsigned TaskId : Order) {
    Tick Arrival = 0;
    for (size_t EdgeIdx : In[TaskId]) {
      const DataEdge &E = Edges[EdgeIdx];
      Arrival = std::max(Arrival, Longest[E.Src] + E.BaseTransfer);
    }
    Longest[TaskId] = Arrival + Tasks[TaskId].RefTicks;
    Best = std::max(Best, Longest[TaskId]);
  }
  return Best;
}

Tick Job::totalRefTicks() const {
  Tick Sum = 0;
  for (const auto &T : Tasks)
    Sum += T.RefTicks;
  return Sum;
}

Job cws::makeFig2Job() {
  Job J;
  // Reference times are the Ti1 row of Fig. 2a; volumes are the Vij row.
  unsigned P1 = J.addTask("P1", 2, 20);
  unsigned P2 = J.addTask("P2", 3, 30);
  unsigned P3 = J.addTask("P3", 1, 10);
  unsigned P4 = J.addTask("P4", 2, 20);
  unsigned P5 = J.addTask("P5", 1, 10);
  unsigned P6 = J.addTask("P6", 2, 20);
  // D1..D8, each one tick, reproducing the critical work lengths
  // 12/11/10/9 of Section 3.
  J.addEdge(P1, P2, 1); // D1
  J.addEdge(P1, P3, 1); // D2
  J.addEdge(P2, P4, 1); // D3
  J.addEdge(P2, P5, 1); // D4
  J.addEdge(P3, P4, 1); // D5
  J.addEdge(P3, P5, 1); // D6
  J.addEdge(P4, P6, 1); // D7
  J.addEdge(P5, P6, 1); // D8
  J.setDeadline(20);
  return J;
}
