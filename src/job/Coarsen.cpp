//===-- job/Coarsen.cpp - Computation granularity control -----------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "job/Coarsen.h"
#include "support/Check.h"

#include <algorithm>
#include <map>
#include <string>

using namespace cws;

namespace {

/// Mutable working copy of a job during contraction.
struct ProtoGraph {
  struct ProtoTask {
    bool Alive = true;
    Tick Ref = 0;
    double Vol = 0.0;
    std::vector<unsigned> Members;
  };
  struct ProtoEdge {
    unsigned Src;
    unsigned Dst;
    Tick Transfer;
  };

  std::vector<ProtoTask> Tasks;
  std::vector<ProtoEdge> Edges;
  Tick MaxMergedRef = 0;

  bool mergeFits(unsigned A, unsigned B) const {
    return MaxMergedRef == 0 || Tasks[A].Ref + Tasks[B].Ref <= MaxMergedRef;
  }

  explicit ProtoGraph(const Job &J) {
    Tasks.resize(J.taskCount());
    for (const auto &T : J.tasks()) {
      Tasks[T.Id].Ref = T.RefTicks;
      Tasks[T.Id].Vol = T.Volume;
      Tasks[T.Id].Members = {T.Id};
    }
    for (const auto &E : J.edges())
      Edges.push_back({E.Src, E.Dst, E.BaseTransfer});
  }

  /// Drops dead-endpoint and duplicate edges (keeping the longest
  /// transfer per (src, dst) pair).
  void normalizeEdges() {
    std::map<std::pair<unsigned, unsigned>, Tick> Best;
    for (const auto &E : Edges) {
      if (!Tasks[E.Src].Alive || !Tasks[E.Dst].Alive || E.Src == E.Dst)
        continue;
      auto Key = std::make_pair(E.Src, E.Dst);
      auto It = Best.find(Key);
      if (It == Best.end())
        Best.emplace(Key, E.Transfer);
      else
        It->second = std::max(It->second, E.Transfer);
    }
    Edges.clear();
    for (const auto &[Key, Transfer] : Best)
      Edges.push_back({Key.first, Key.second, Transfer});
  }

  /// Fuses \p Loser into \p Winner; edges keep pointing at Loser until
  /// the caller redirects them.
  void fuse(unsigned Winner, unsigned Loser) {
    ProtoTask &W = Tasks[Winner];
    ProtoTask &L = Tasks[Loser];
    W.Ref += L.Ref;
    W.Vol += L.Vol;
    W.Members.insert(W.Members.end(), L.Members.begin(), L.Members.end());
    L.Alive = false;
  }

  void redirect(unsigned From, unsigned To) {
    for (auto &E : Edges) {
      if (E.Src == From)
        E.Src = To;
      if (E.Dst == From)
        E.Dst = To;
    }
  }

  /// One series pass: merges every u -> v where v is u's only successor
  /// and u is v's only predecessor. Returns the number of merges.
  size_t contractSeries() {
    normalizeEdges();
    std::vector<int> OutCount(Tasks.size(), 0);
    std::vector<int> InCount(Tasks.size(), 0);
    for (const auto &E : Edges) {
      ++OutCount[E.Src];
      ++InCount[E.Dst];
    }
    size_t Merges = 0;
    for (const auto &E : Edges) {
      if (!Tasks[E.Src].Alive || !Tasks[E.Dst].Alive)
        continue;
      if (OutCount[E.Src] != 1 || InCount[E.Dst] != 1)
        continue;
      if (!mergeFits(E.Src, E.Dst))
        continue;
      fuse(E.Src, E.Dst);
      redirect(E.Dst, E.Src);
      ++Merges;
      // Degree counts are stale after one merge; restart the pass.
      break;
    }
    return Merges;
  }

  /// One sibling round: fuses disjoint pairs of alive tasks that share
  /// identical predecessor and successor sets. Returns merges done.
  size_t mergeSiblings() {
    normalizeEdges();
    std::vector<std::vector<unsigned>> Preds(Tasks.size());
    std::vector<std::vector<unsigned>> Succs(Tasks.size());
    for (const auto &E : Edges) {
      Preds[E.Dst].push_back(E.Src);
      Succs[E.Src].push_back(E.Dst);
    }
    std::map<std::pair<std::vector<unsigned>, std::vector<unsigned>>,
             std::vector<unsigned>>
        Groups;
    for (unsigned T = 0; T < Tasks.size(); ++T) {
      if (!Tasks[T].Alive)
        continue;
      std::sort(Preds[T].begin(), Preds[T].end());
      std::sort(Succs[T].begin(), Succs[T].end());
      Groups[{Preds[T], Succs[T]}].push_back(T);
    }
    size_t Merges = 0;
    for (auto &[Key, Group] : Groups)
      for (size_t I = 0; I + 1 < Group.size(); I += 2) {
        if (!mergeFits(Group[I], Group[I + 1]))
          continue;
        fuse(Group[I], Group[I + 1]);
        redirect(Group[I + 1], Group[I]);
        ++Merges;
      }
    return Merges;
  }
};

} // namespace

CoarseJob cws::coarsenJob(const Job &J, const CoarsenConfig &Config) {
  ProtoGraph G(J);
  G.MaxMergedRef = Config.MaxMergedRef;
  if (Config.MergeSeries)
    while (G.contractSeries() > 0)
      ;
  for (unsigned Round = 0; Round < Config.SiblingRounds; ++Round) {
    if (G.mergeSiblings() == 0)
      break;
    if (Config.MergeSeries)
      while (G.contractSeries() > 0)
        ;
  }
  G.normalizeEdges();

  CoarseJob Result;
  Result.Coarse.setId(J.id());
  Result.Coarse.setRelease(J.release());
  Result.Coarse.setDeadline(J.deadline());

  std::vector<unsigned> NewId(G.Tasks.size(), 0);
  for (unsigned T = 0; T < G.Tasks.size(); ++T) {
    const auto &P = G.Tasks[T];
    if (!P.Alive)
      continue;
    std::string Name = J.task(P.Members.front()).Name;
    if (P.Members.size() > 1)
      Name += "+" + std::to_string(P.Members.size() - 1);
    NewId[T] = Result.Coarse.addTask(Name, P.Ref, P.Vol);
    Result.Members.push_back(P.Members);
  }
  for (const auto &E : G.Edges)
    Result.Coarse.addEdge(NewId[E.Src], NewId[E.Dst], E.Transfer);
  CWS_CHECK(Result.Coarse.isAcyclic(), "coarsening produced a cycle");
  return Result;
}
