//===-- support/Json.cpp - Minimal JSON value tree ------------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace cws {
namespace json {

const Value *Value::find(const std::string &Name) const {
  if (!isObject())
    return nullptr;
  for (const auto &Member : Obj)
    if (Member.first == Name)
      return &Member.second;
  return nullptr;
}

bool Value::getNumber(const std::string &Name, double &Out) const {
  const Value *V = find(Name);
  if (!V || !V->isNumber())
    return false;
  Out = V->Num;
  return true;
}

bool Value::getString(const std::string &Name, std::string &Out) const {
  const Value *V = find(Name);
  if (!V || !V->isString())
    return false;
  Out = V->Str;
  return true;
}

namespace {

/// Recursive-descent parser over the raw text. Depth is bounded to keep
/// hostile inputs from exhausting the stack.
class Parser {
public:
  Parser(const std::string &Text, std::string &Error)
      : Text(Text), Error(Error) {}

  bool run(Value &Out) {
    skipWs();
    if (!parseValue(Out, 0))
      return false;
    skipWs();
    if (Pos != Text.size())
      return fail("trailing content after the top-level value");
    return true;
  }

private:
  static constexpr int MaxDepth = 64;

  bool fail(const std::string &What) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%zu", Pos);
    Error = "json: " + What + " at byte " + Buf;
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool literal(const char *Word) {
    size_t Len = 0;
    while (Word[Len])
      ++Len;
    if (Text.compare(Pos, Len, Word) != 0)
      return fail(std::string("expected '") + Word + "'");
    Pos += Len;
    return true;
  }

  bool parseString(std::string &Out) {
    if (Pos >= Text.size() || Text[Pos] != '"')
      return fail("expected '\"'");
    ++Pos;
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("raw control character in string");
      if (C != '\\') {
        Out.push_back(C);
        continue;
      }
      if (Pos >= Text.size())
        break;
      char E = Text[Pos++];
      switch (E) {
      case '"': Out.push_back('"'); break;
      case '\\': Out.push_back('\\'); break;
      case '/': Out.push_back('/'); break;
      case 'b': Out.push_back('\b'); break;
      case 'f': Out.push_back('\f'); break;
      case 'n': Out.push_back('\n'); break;
      case 'r': Out.push_back('\r'); break;
      case 't': Out.push_back('\t'); break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return fail("malformed \\u escape");
        }
        // UTF-8 encode the code point; surrogate pairs are not joined
        // (the artifacts never emit them) but still round-trip as two
        // three-byte sequences.
        if (Code < 0x80) {
          Out.push_back(static_cast<char>(Code));
        } else if (Code < 0x800) {
          Out.push_back(static_cast<char>(0xC0 | (Code >> 6)));
          Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
        } else {
          Out.push_back(static_cast<char>(0xE0 | (Code >> 12)));
          Out.push_back(static_cast<char>(0x80 | ((Code >> 6) & 0x3F)));
          Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
        }
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parseNumber(Value &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    if (Pos == Start)
      return fail("expected a value");
    std::string Num = Text.substr(Start, Pos - Start);
    char *End = nullptr;
    double X = std::strtod(Num.c_str(), &End);
    if (!End || *End != '\0')
      return fail("malformed number");
    Out.K = Value::Kind::Number;
    Out.Num = X;
    return true;
  }

  bool parseValue(Value &Out, int Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    skipWs();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    if (C == '{') {
      ++Pos;
      Out.K = Value::Kind::Object;
      skipWs();
      if (Pos < Text.size() && Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      while (true) {
        skipWs();
        std::string Name;
        if (!parseString(Name))
          return false;
        skipWs();
        if (Pos >= Text.size() || Text[Pos] != ':')
          return fail("expected ':'");
        ++Pos;
        Value Member;
        if (!parseValue(Member, Depth + 1))
          return false;
        Out.Obj.emplace_back(std::move(Name), std::move(Member));
        skipWs();
        if (Pos < Text.size() && Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Pos < Text.size() && Text[Pos] == '}') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    if (C == '[') {
      ++Pos;
      Out.K = Value::Kind::Array;
      skipWs();
      if (Pos < Text.size() && Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      while (true) {
        Value Elem;
        if (!parseValue(Elem, Depth + 1))
          return false;
        Out.Arr.push_back(std::move(Elem));
        skipWs();
        if (Pos < Text.size() && Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Pos < Text.size() && Text[Pos] == ']') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    if (C == '"') {
      Out.K = Value::Kind::String;
      return parseString(Out.Str);
    }
    if (C == 't') {
      Out.K = Value::Kind::Bool;
      Out.B = true;
      return literal("true");
    }
    if (C == 'f') {
      Out.K = Value::Kind::Bool;
      Out.B = false;
      return literal("false");
    }
    if (C == 'n') {
      Out.K = Value::Kind::Null;
      return literal("null");
    }
    return parseNumber(Out);
  }

  const std::string &Text;
  std::string &Error;
  size_t Pos = 0;
};

} // namespace

bool parse(const std::string &Text, Value &Out, std::string &Error) {
  Out = Value();
  return Parser(Text, Error).run(Out);
}

std::string escape(const std::string &Raw) {
  std::string Out;
  Out.reserve(Raw.size());
  for (char C : Raw) {
    switch (C) {
    case '"': Out += "\\\""; break;
    case '\\': Out += "\\\\"; break;
    case '\n': Out += "\\n"; break;
    case '\r': Out += "\\r"; break;
    case '\t': Out += "\\t"; break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out.push_back(C);
      }
    }
  }
  return Out;
}

} // namespace json
} // namespace cws
