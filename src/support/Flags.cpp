//===-- support/Flags.cpp - Tiny CLI flag parser --------------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "support/Flags.h"
#include "support/Check.h"

#include <cstdio>
#include <cstdlib>

using namespace cws;

void Flags::addInt(const std::string &Name, int64_t *Storage,
                   const std::string &Help) {
  Entries.push_back({Name, Kind::Int, Storage, Help});
}

void Flags::addReal(const std::string &Name, double *Storage,
                    const std::string &Help) {
  Entries.push_back({Name, Kind::Real, Storage, Help});
}

void Flags::addString(const std::string &Name, std::string *Storage,
                      const std::string &Help) {
  Entries.push_back({Name, Kind::String, Storage, Help});
}

void Flags::addBool(const std::string &Name, bool *Storage,
                    const std::string &Help) {
  Entries.push_back({Name, Kind::Bool, Storage, Help});
}

const Flags::Entry *Flags::find(const std::string &Name) const {
  for (const auto &E : Entries)
    if (E.Name == Name)
      return &E;
  return nullptr;
}

bool Flags::parse(int Argc, char **Argv) const {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--help" || Arg == "-h") {
      std::printf("flags:\n");
      for (const auto &E : Entries)
        std::printf("  --%-20s %s\n", E.Name.c_str(), E.Help.c_str());
      return false;
    }
    if (Arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument '%s'\n",
                   Arg.c_str());
      std::exit(2);
    }
    std::string Body = Arg.substr(2);
    std::string Name = Body;
    std::string Value;
    bool HaveValue = false;
    if (size_t Eq = Body.find('='); Eq != std::string::npos) {
      Name = Body.substr(0, Eq);
      Value = Body.substr(Eq + 1);
      HaveValue = true;
    }
    const Entry *E = find(Name);
    if (!E) {
      std::fprintf(stderr, "unknown flag '--%s' (try --help)\n", Name.c_str());
      std::exit(2);
    }
    if (!HaveValue) {
      if (E->FlagKind == Kind::Bool) {
        *static_cast<bool *>(E->Storage) = true;
        continue;
      }
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "flag '--%s' needs a value\n", Name.c_str());
        std::exit(2);
      }
      Value = Argv[++I];
    }
    switch (E->FlagKind) {
    case Kind::Bool: {
      bool On = Value == "1" || Value == "true";
      if (!On && Value != "0" && Value != "false") {
        std::fprintf(stderr, "flag '--%s' takes 0|1|true|false, got '%s'\n",
                     Name.c_str(), Value.c_str());
        std::exit(2);
      }
      *static_cast<bool *>(E->Storage) = On;
      break;
    }
    case Kind::Int:
      *static_cast<int64_t *>(E->Storage) = std::strtoll(Value.c_str(),
                                                         nullptr, 10);
      break;
    case Kind::Real:
      *static_cast<double *>(E->Storage) = std::strtod(Value.c_str(), nullptr);
      break;
    case Kind::String:
      *static_cast<std::string *>(E->Storage) = Value;
      break;
    }
  }
  return true;
}
