//===-- support/Table.cpp - ASCII table printer ---------------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

using namespace cws;

Table::Table(std::vector<std::string> Header) : Header(std::move(Header)) {}

void Table::addRow(std::vector<std::string> Cells) {
  Rows.push_back(std::move(Cells));
}

std::string Table::num(double Value, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, Value);
  return Buf;
}

void Table::print(std::ostream &OS) const {
  std::vector<size_t> Widths(Header.size(), 0);
  for (size_t I = 0; I < Header.size(); ++I)
    Widths[I] = Header[I].size();
  for (const auto &Row : Rows)
    for (size_t I = 0; I < Row.size() && I < Widths.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());

  auto PrintRow = [&](const std::vector<std::string> &Cells) {
    OS << "|";
    for (size_t I = 0; I < Widths.size(); ++I) {
      std::string Cell = I < Cells.size() ? Cells[I] : "";
      OS << " " << Cell << std::string(Widths[I] - Cell.size(), ' ') << " |";
    }
    OS << "\n";
  };

  PrintRow(Header);
  OS << "|";
  for (size_t Width : Widths)
    OS << std::string(Width + 2, '-') << "|";
  OS << "\n";
  for (const auto &Row : Rows)
    PrintRow(Row);
}
