//===-- support/Check.h - Assertion helpers ---------------------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assertion and unreachable-code helpers. CWS does not use exceptions;
/// contract violations abort with a message in all build modes.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_SUPPORT_CHECK_H
#define CWS_SUPPORT_CHECK_H

#include <cstdio>
#include <cstdlib>

namespace cws {

/// Aborts the process after printing \p Msg with source location.
[[noreturn]] inline void reportFatal(const char *Msg, const char *File,
                                     int Line) {
  std::fprintf(stderr, "cws fatal error: %s (%s:%d)\n", Msg, File, Line);
  std::abort();
}

} // namespace cws

/// Checks \p Cond in every build mode (unlike assert) and aborts with
/// \p Msg on failure. Use for invariants whose violation would corrupt
/// schedules silently.
#define CWS_CHECK(Cond, Msg)                                                   \
  do {                                                                         \
    if (!(Cond))                                                               \
      ::cws::reportFatal(Msg, __FILE__, __LINE__);                             \
  } while (false)

/// Marks a point that must never be reached.
#define CWS_UNREACHABLE(Msg) ::cws::reportFatal(Msg, __FILE__, __LINE__)

#endif // CWS_SUPPORT_CHECK_H
