//===-- support/Stats.h - Streaming statistics ------------------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Streaming statistics used by the QoS factor collectors: online
/// mean/variance, fixed-bin histograms and percentile extraction.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_SUPPORT_STATS_H
#define CWS_SUPPORT_STATS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cws {

/// Online mean / variance / extrema accumulator (Welford).
class OnlineStats {
public:
  void add(double Value);

  /// Merges another accumulator into this one.
  void merge(const OnlineStats &Other);

  size_t count() const { return Count; }
  double mean() const { return Count ? Mean : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return Count ? Min : 0.0; }
  double max() const { return Count ? Max : 0.0; }
  double sum() const { return Count ? Mean * static_cast<double>(Count) : 0.0; }

private:
  size_t Count = 0;
  double Mean = 0.0;
  double M2 = 0.0;
  double Min = 0.0;
  double Max = 0.0;
};

/// Fixed-width histogram over [Lo, Hi); values outside are clamped into
/// the first/last bin so totals stay meaningful.
class Histogram {
public:
  Histogram(double Lo, double Hi, size_t Bins);

  void add(double Value);
  size_t binCount(size_t Bin) const;
  size_t total() const { return Total; }
  size_t bins() const { return Counts.size(); }
  double binLo(size_t Bin) const;
  double binHi(size_t Bin) const;

  /// Fraction of samples in \p Bin; 0 when empty.
  double fraction(size_t Bin) const;

private:
  double Lo;
  double Hi;
  std::vector<size_t> Counts;
  size_t Total = 0;
};

/// Returns the \p Q quantile (0..1) of \p Samples. Sorts a copy; intended
/// for end-of-experiment reporting, not hot paths. Returns NaN when
/// empty (no samples have no quantiles; reports render "n/a" and SLO
/// rules fail closed, the same convention as `deadline_miss_rate`).
double quantile(std::vector<double> Samples, double Q);

/// Two-sided 95% Student-t critical value for \p Df degrees of freedom:
/// an exact table for 1..30, the normal 1.96 beyond. Used for the
/// confidence intervals of sweep-pooled QoS indicators. Returns NaN for
/// Df == 0 (one sample bounds nothing).
double tCritical95(size_t Df);

/// Ratio accumulator for percentage reporting (e.g. "38% admissible").
class RatioCounter {
public:
  void add(bool Hit) {
    ++Total;
    if (Hit)
      ++Hits;
  }
  size_t hits() const { return Hits; }
  size_t total() const { return Total; }
  double percent() const {
    return Total ? 100.0 * static_cast<double>(Hits) / static_cast<double>(Total)
                 : 0.0;
  }

private:
  size_t Hits = 0;
  size_t Total = 0;
};

} // namespace cws

#endif // CWS_SUPPORT_STATS_H
