//===-- support/Stats.cpp - Streaming statistics --------------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"
#include "support/Check.h"

#include <algorithm>
#include <cmath>
#include <limits>

using namespace cws;

void OnlineStats::add(double Value) {
  if (Count == 0) {
    Min = Max = Value;
  } else {
    Min = std::min(Min, Value);
    Max = std::max(Max, Value);
  }
  ++Count;
  double Delta = Value - Mean;
  Mean += Delta / static_cast<double>(Count);
  M2 += Delta * (Value - Mean);
}

void OnlineStats::merge(const OnlineStats &Other) {
  if (Other.Count == 0)
    return;
  if (Count == 0) {
    *this = Other;
    return;
  }
  size_t NewCount = Count + Other.Count;
  double Delta = Other.Mean - Mean;
  double NewMean =
      Mean + Delta * static_cast<double>(Other.Count) /
                 static_cast<double>(NewCount);
  M2 += Other.M2 + Delta * Delta * static_cast<double>(Count) *
                       static_cast<double>(Other.Count) /
                       static_cast<double>(NewCount);
  Mean = NewMean;
  Count = NewCount;
  Min = std::min(Min, Other.Min);
  Max = std::max(Max, Other.Max);
}

double OnlineStats::variance() const {
  if (Count < 2)
    return 0.0;
  return M2 / static_cast<double>(Count - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double Lo, double Hi, size_t Bins)
    : Lo(Lo), Hi(Hi), Counts(Bins, 0) {
  CWS_CHECK(Bins > 0, "histogram needs at least one bin");
  CWS_CHECK(Lo < Hi, "histogram range must be non-empty");
}

void Histogram::add(double Value) {
  double Unit = (Value - Lo) / (Hi - Lo);
  auto Bin = static_cast<int64_t>(Unit * static_cast<double>(Counts.size()));
  Bin = std::clamp<int64_t>(Bin, 0, static_cast<int64_t>(Counts.size()) - 1);
  ++Counts[static_cast<size_t>(Bin)];
  ++Total;
}

size_t Histogram::binCount(size_t Bin) const {
  CWS_CHECK(Bin < Counts.size(), "histogram bin out of range");
  return Counts[Bin];
}

double Histogram::binLo(size_t Bin) const {
  return Lo + (Hi - Lo) * static_cast<double>(Bin) /
                  static_cast<double>(Counts.size());
}

double Histogram::binHi(size_t Bin) const { return binLo(Bin + 1); }

double Histogram::fraction(size_t Bin) const {
  if (Total == 0)
    return 0.0;
  return static_cast<double>(binCount(Bin)) / static_cast<double>(Total);
}

double cws::tCritical95(size_t Df) {
  // Standard two-sided 95% quantiles of Student's t distribution.
  static const double Table[] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
      2.228,  2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
      2.093,  2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
      2.048,  2.045, 2.042};
  if (Df == 0)
    return std::numeric_limits<double>::quiet_NaN();
  if (Df <= 30)
    return Table[Df - 1];
  return 1.96;
}

double cws::quantile(std::vector<double> Samples, double Q) {
  // An empty sample set has no quantiles: NaN propagates into report
  // renderers (which show "n/a") and SLO comparisons (which fail
  // closed), instead of a reassuring 0 that reads as a perfect score.
  if (Samples.empty())
    return std::numeric_limits<double>::quiet_NaN();
  Q = std::clamp(Q, 0.0, 1.0);
  std::sort(Samples.begin(), Samples.end());
  double Pos = Q * static_cast<double>(Samples.size() - 1);
  auto Idx = static_cast<size_t>(Pos);
  double Frac = Pos - static_cast<double>(Idx);
  if (Idx + 1 >= Samples.size())
    return Samples.back();
  return Samples[Idx] * (1.0 - Frac) + Samples[Idx + 1] * Frac;
}
