//===-- support/Flags.h - Tiny CLI flag parser ------------------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny command line flag parser for the bench and example binaries:
/// `--name=value` or `--name value`. Unknown flags are fatal so typos in
/// experiment scripts do not silently run the default configuration.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_SUPPORT_FLAGS_H
#define CWS_SUPPORT_FLAGS_H

#include <cstdint>
#include <string>
#include <vector>

namespace cws {

/// Registry of typed flags bound to caller-owned storage.
class Flags {
public:
  /// Registers an integer flag writing into \p Storage.
  void addInt(const std::string &Name, int64_t *Storage,
              const std::string &Help);

  /// Registers a real-valued flag writing into \p Storage.
  void addReal(const std::string &Name, double *Storage,
               const std::string &Help);

  /// Registers a string flag writing into \p Storage.
  void addString(const std::string &Name, std::string *Storage,
                 const std::string &Help);

  /// Registers a boolean flag writing into \p Storage. A bare `--name`
  /// sets it; `--name=0|1|true|false` assigns explicitly. Unlike the
  /// other kinds, a bare boolean never consumes the next argv entry.
  void addBool(const std::string &Name, bool *Storage,
               const std::string &Help);

  /// Parses argv. On `--help`, prints usage and returns false (caller
  /// should exit). Unknown flags or malformed values abort.
  bool parse(int Argc, char **Argv) const;

private:
  enum class Kind { Int, Real, String, Bool };
  struct Entry {
    std::string Name;
    Kind FlagKind;
    void *Storage;
    std::string Help;
  };
  std::vector<Entry> Entries;

  const Entry *find(const std::string &Name) const;
};

} // namespace cws

#endif // CWS_SUPPORT_FLAGS_H
