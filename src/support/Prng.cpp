//===-- support/Prng.cpp - Deterministic pseudo-random numbers -----------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "support/Prng.h"
#include "support/Check.h"

#include <cmath>

using namespace cws;

static uint64_t splitmix64(uint64_t &X) {
  X += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

static uint64_t rotl(uint64_t X, int K) {
  return (X << K) | (X >> (64 - K));
}

Prng::Prng(uint64_t Seed) {
  uint64_t S = Seed;
  for (uint64_t &Word : State)
    Word = splitmix64(S);
}

uint64_t Prng::next() {
  uint64_t Result = rotl(State[1] * 5, 7) * 9;
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

int64_t Prng::uniformInt(int64_t Lo, int64_t Hi) {
  CWS_CHECK(Lo <= Hi, "uniformInt requires Lo <= Hi");
  uint64_t Span = static_cast<uint64_t>(Hi - Lo) + 1;
  if (Span == 0) // Full 64-bit range.
    return static_cast<int64_t>(next());
  // Rejection sampling to avoid modulo bias.
  uint64_t Limit = UINT64_MAX - UINT64_MAX % Span;
  uint64_t Raw;
  do
    Raw = next();
  while (Raw >= Limit);
  return Lo + static_cast<int64_t>(Raw % Span);
}

double Prng::uniformReal(double Lo, double Hi) {
  CWS_CHECK(Lo <= Hi, "uniformReal requires Lo <= Hi");
  double Unit = static_cast<double>(next() >> 11) * 0x1.0p-53;
  return Lo + Unit * (Hi - Lo);
}

bool Prng::bernoulli(double P) {
  if (P <= 0.0)
    return false;
  if (P >= 1.0)
    return true;
  return uniformReal(0.0, 1.0) < P;
}

size_t Prng::index(size_t Size) {
  CWS_CHECK(Size > 0, "index requires a non-empty range");
  return static_cast<size_t>(uniformInt(0, static_cast<int64_t>(Size) - 1));
}

Prng Prng::fork() { return Prng(next() ^ 0xa02f0d57c35b6e21ULL); }
