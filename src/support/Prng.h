//===-- support/Prng.h - Deterministic pseudo-random numbers ----*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, deterministic PRNG (xoshiro256**) with the uniform
/// distributions the paper's simulation studies rely on. All randomized
/// experiments in CWS are reproducible from a single 64-bit seed.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_SUPPORT_PRNG_H
#define CWS_SUPPORT_PRNG_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cws {

/// Deterministic pseudo-random number generator.
///
/// Uses xoshiro256** seeded via splitmix64. Never reads external entropy:
/// the same seed always reproduces the same experiment, which the test
/// suite and the figure benches depend on.
class Prng {
public:
  explicit Prng(uint64_t Seed = 0x5eed5eed5eed5eedULL);

  /// Returns the next raw 64-bit value.
  uint64_t next();

  /// Returns a uniform integer in [Lo, Hi] (inclusive). Requires Lo <= Hi.
  int64_t uniformInt(int64_t Lo, int64_t Hi);

  /// Returns a uniform real in [Lo, Hi).
  double uniformReal(double Lo, double Hi);

  /// Returns true with probability \p P (clamped to [0, 1]).
  bool bernoulli(double P);

  /// Returns a uniform index in [0, Size). Requires Size > 0.
  size_t index(size_t Size);

  /// Fisher-Yates shuffles \p Values in place.
  template <typename T> void shuffle(std::vector<T> &Values) {
    if (Values.size() < 2)
      return;
    for (size_t I = Values.size() - 1; I > 0; --I)
      std::swap(Values[I], Values[index(I + 1)]);
  }

  /// Derives an independent child generator; used to give each simulated
  /// entity its own stream so adding entities does not perturb others.
  Prng fork();

private:
  uint64_t State[4];
};

} // namespace cws

#endif // CWS_SUPPORT_PRNG_H
