//===-- support/Json.h - Minimal JSON value tree ----------------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal JSON document model for the structured artifacts the stack
/// writes and reads back (`profile.json`, `BENCH_*.json`): parse into an
/// immutable value tree, navigate with checked accessors. This is a
/// consumer-side parser for files the repository itself emits, not a
/// general-purpose JSON library — it accepts standard JSON (RFC 8259)
/// and rejects everything else with a byte-offset error.
///
/// Writers stay hand-rolled (`obs::renderNumber` + manual escaping, the
/// journal/trace precedent); only readers go through this tree.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_SUPPORT_JSON_H
#define CWS_SUPPORT_JSON_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace cws {
namespace json {

/// One parsed JSON value. Object member order is preserved (the
/// artifacts are written in a canonical order and diffs should see it).
class Value {
public:
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  /// Value accessors; defaults are returned on kind mismatch so lookup
  /// chains degrade without branching at every step (schema validation
  /// checks kinds explicitly where it matters).
  bool boolean(bool Default = false) const {
    return isBool() ? B : Default;
  }
  double number(double Default = 0.0) const {
    return isNumber() ? Num : Default;
  }
  const std::string &text() const { return Str; }
  const std::vector<Value> &array() const { return Arr; }
  const std::vector<std::pair<std::string, Value>> &members() const {
    return Obj;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const Value *find(const std::string &Name) const;
  /// Checked member accessors for schema validation: true only when the
  /// member exists with the expected kind.
  bool getNumber(const std::string &Name, double &Out) const;
  bool getString(const std::string &Name, std::string &Out) const;

  Kind K = Kind::Null;
  bool B = false;
  double Num = 0.0;
  std::string Str;
  std::vector<Value> Arr;
  std::vector<std::pair<std::string, Value>> Obj;
};

/// Parses \p Text into \p Out. Returns false and sets \p Error (with a
/// byte offset) on malformed input; trailing non-whitespace after the
/// top-level value is an error.
bool parse(const std::string &Text, Value &Out, std::string &Error);

/// Escapes \p Raw for splicing between JSON string quotes (`"` / `\` /
/// control characters; the writer-side twin of the parser above).
std::string escape(const std::string &Raw);

} // namespace json
} // namespace cws

#endif // CWS_SUPPORT_JSON_H
