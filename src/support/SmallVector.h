//===-- support/SmallVector.h - Inline-storage vector -----------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A vector with inline storage for the first `N` elements, for hot
/// containers whose typical size is small and bounded (the chain DP's
/// Pareto fronts are capped at `MaxFrontSize`, default 8, so a matching
/// inline capacity removes every per-state heap allocation). Restricted
/// to trivially copyable element types: growth and erasure are plain
/// memmove/memcpy, no element lifetimes to manage.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_SUPPORT_SMALLVECTOR_H
#define CWS_SUPPORT_SMALLVECTOR_H

#include "support/Check.h"

#include <cstddef>
#include <cstring>
#include <memory>
#include <type_traits>

namespace cws {

template <typename T, size_t N> class SmallVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVector is restricted to trivially copyable types");
  static_assert(N > 0, "inline capacity must be positive");

public:
  SmallVector() = default;
  ~SmallVector() = default;

  SmallVector(const SmallVector &Other) { *this = Other; }
  SmallVector &operator=(const SmallVector &Other) {
    if (this == &Other)
      return *this;
    Sz = 0;
    reserve(Other.Sz);
    std::memcpy(data(), Other.data(), Other.Sz * sizeof(T));
    Sz = Other.Sz;
    return *this;
  }

  T *begin() { return data(); }
  T *end() { return data() + Sz; }
  const T *begin() const { return data(); }
  const T *end() const { return data() + Sz; }

  T &operator[](size_t I) { return data()[I]; }
  const T &operator[](size_t I) const { return data()[I]; }
  T &back() { return data()[Sz - 1]; }
  const T &back() const { return data()[Sz - 1]; }

  size_t size() const { return Sz; }
  bool empty() const { return Sz == 0; }
  size_t capacity() const { return Cap; }
  /// True while no element has spilled to the heap.
  bool inlined() const { return !Heap; }

  void clear() { Sz = 0; }

  void reserve(size_t Wanted) {
    if (Wanted <= Cap)
      return;
    size_t NewCap = Cap * 2 > Wanted ? Cap * 2 : Wanted;
    auto NewHeap = std::make_unique<unsigned char[]>(NewCap * sizeof(T));
    std::memcpy(NewHeap.get(), data(), Sz * sizeof(T));
    Heap = std::move(NewHeap);
    Cap = NewCap;
  }

  void push_back(const T &V) {
    reserve(Sz + 1);
    data()[Sz++] = V;
  }

  /// Inserts \p V before \p Pos (an iterator into this vector).
  void insert(T *Pos, const T &V) {
    size_t Idx = static_cast<size_t>(Pos - data());
    CWS_CHECK(Idx <= Sz, "insert position out of range");
    reserve(Sz + 1);
    T *D = data();
    std::memmove(D + Idx + 1, D + Idx, (Sz - Idx) * sizeof(T));
    D[Idx] = V;
    ++Sz;
  }

  /// Erases [First, Last); returns the new iterator at First's offset.
  T *erase(T *First, T *Last) {
    size_t Lo = static_cast<size_t>(First - data());
    size_t Hi = static_cast<size_t>(Last - data());
    CWS_CHECK(Lo <= Hi && Hi <= Sz, "erase range out of bounds");
    T *D = data();
    std::memmove(D + Lo, D + Hi, (Sz - Hi) * sizeof(T));
    Sz -= Hi - Lo;
    return D + Lo;
  }

  T *erase(T *Pos) { return erase(Pos, Pos + 1); }

private:
  T *data() {
    return Heap ? reinterpret_cast<T *>(Heap.get())
                : reinterpret_cast<T *>(Inline);
  }
  const T *data() const {
    return Heap ? reinterpret_cast<const T *>(Heap.get())
                : reinterpret_cast<const T *>(Inline);
  }

  alignas(T) unsigned char Inline[N * sizeof(T)];
  std::unique_ptr<unsigned char[]> Heap;
  size_t Sz = 0;
  size_t Cap = N;
};

} // namespace cws

#endif // CWS_SUPPORT_SMALLVECTOR_H
