//===-- support/Table.h - ASCII table printer -------------------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal ASCII table printer used by the figure benches to report
/// paper-vs-measured series in a uniform format.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_SUPPORT_TABLE_H
#define CWS_SUPPORT_TABLE_H

#include <iosfwd>
#include <string>
#include <vector>

namespace cws {

/// Accumulates rows of strings and renders them with aligned columns.
class Table {
public:
  explicit Table(std::vector<std::string> Header);

  /// Appends a row; it may have fewer cells than the header.
  void addRow(std::vector<std::string> Cells);

  /// Formats \p Value with \p Precision fraction digits.
  static std::string num(double Value, int Precision = 2);

  /// Renders the table (header, separator, rows) to \p OS.
  void print(std::ostream &OS) const;

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace cws

#endif // CWS_SUPPORT_TABLE_H
