//===-- support/ThreadPool.h - Reusable worker pool -------------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small reusable worker pool for embarrassingly parallel fan-out,
/// built for `Strategy::build`'s independent variant generation and
/// shared by any later job-flow parallelism. The central primitive is
/// `parallelFor`: the calling thread *participates* in its own batch
/// (claiming indices from a shared atomic), so a saturated — or empty —
/// pool degrades to serial execution instead of deadlocking, and
/// concurrent batches from different callers interleave safely.
///
/// Determinism contract: `parallelFor` promises nothing about execution
/// order. Callers that need deterministic output write results into
/// pre-sized slots indexed by the loop variable and merge serially.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_SUPPORT_THREADPOOL_H
#define CWS_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cws {

/// Worker pool that grows on demand up to explicit lane requests.
class ThreadPool {
public:
  /// Spawns \p ThreadCount workers. Zero is valid: every parallelFor
  /// then runs entirely on the calling thread (until an explicit
  /// MaxLanes request grows the pool).
  explicit ThreadPool(size_t ThreadCount);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  size_t threadCount() const;

  /// Grows the pool to at least \p Wanted workers (never shrinks;
  /// capped at 64). An explicit `--build-threads N` must spawn real
  /// lanes even on hardware whose concurrency is below N — both to
  /// honor the request on wide machines with a narrow default pool and
  /// to let single-core CI genuinely exercise the concurrent path.
  void ensureWorkers(size_t Wanted);

  /// Runs Body(0) .. Body(N - 1), blocking until all complete. Indices
  /// are claimed dynamically by up to threadCount() workers plus the
  /// calling thread; bodies must not throw. \p MaxLanes, when non-zero,
  /// caps the total lanes (helpers + caller) used for this batch.
  void parallelFor(size_t N, const std::function<void(size_t)> &Body,
                   size_t MaxLanes = 0);

  /// Batch submit: runs Body(Begin) .. Body(End - 1) with the same
  /// claiming discipline as parallelFor, paying one queue lock
  /// round-trip for the whole range instead of one per element — the
  /// primitive per-tick admission batches are drained through. The
  /// caller participates and the call blocks until the range is done.
  void submitRange(size_t Begin, size_t End,
                   const std::function<void(size_t)> &Body,
                   size_t MaxLanes = 0);

  /// The process-wide pool, sized to defaultThreads() - 1 workers (the
  /// caller is the remaining lane) on first use.
  static ThreadPool &global();

  /// Effective parallelism the tools and Strategy::build default to:
  /// the CWS_BUILD_THREADS environment variable when it parses to a
  /// positive integer, hardware_concurrency() otherwise (at least 1).
  static size_t defaultThreads();

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  mutable std::mutex Mu;
  std::condition_variable HasWork;
  std::deque<std::function<void()>> Queue;
  bool Stopping = false;
};

} // namespace cws

#endif // CWS_SUPPORT_THREADPOOL_H
