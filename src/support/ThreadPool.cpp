//===-- support/ThreadPool.cpp - Reusable worker pool ---------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>

using namespace cws;

ThreadPool::ThreadPool(size_t ThreadCount) {
  Workers.reserve(ThreadCount);
  for (size_t I = 0; I < ThreadCount; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Stopping = true;
  }
  HasWork.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

size_t ThreadPool::threadCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Workers.size();
}

void ThreadPool::ensureWorkers(size_t Wanted) {
  constexpr size_t MaxWorkers = 64;
  Wanted = std::min(Wanted, MaxWorkers);
  std::lock_guard<std::mutex> Lock(Mu);
  while (Workers.size() < Wanted)
    Workers.emplace_back([this] { workerLoop(); });
}

void ThreadPool::workerLoop() {
  while (true) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      HasWork.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained.
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    Task();
  }
}

void ThreadPool::parallelFor(size_t N, const std::function<void(size_t)> &Body,
                             size_t MaxLanes) {
  submitRange(0, N, Body, MaxLanes);
}

void ThreadPool::submitRange(size_t Begin, size_t End,
                             const std::function<void(size_t)> &Body,
                             size_t MaxLanes) {
  if (Begin >= End)
    return;
  size_t N = End - Begin;
  if (N == 1 || MaxLanes == 1) {
    for (size_t I = Begin; I < End; ++I)
      Body(I);
    return;
  }
  // An explicit lane request grows the pool; the auto path (MaxLanes
  // 0) sticks to the workers the pool was built with.
  if (MaxLanes > 1)
    ensureWorkers(MaxLanes - 1);

  // One claim loop shared by the caller and up to N - 1 helpers. The
  // batch lives in a shared_ptr because helper tasks may still hold it
  // after the caller returns (a helper that claimed no index).
  struct Batch {
    std::atomic<size_t> Next{0};
    std::atomic<size_t> Done{0};
    size_t Begin = 0;
    size_t N = 0;
    const std::function<void(size_t)> *Body = nullptr;
    std::mutex DoneMu;
    std::condition_variable AllDone;
  };
  auto B = std::make_shared<Batch>();
  B->Begin = Begin;
  B->N = N;
  B->Body = &Body;

  auto Run = [](const std::shared_ptr<Batch> &B) {
    size_t Finished = 0;
    while (true) {
      size_t I = B->Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= B->N)
        break;
      (*B->Body)(B->Begin + I);
      ++Finished;
    }
    if (Finished == 0)
      return;
    if (B->Done.fetch_add(Finished, std::memory_order_acq_rel) + Finished ==
        B->N) {
      // Last finisher wakes the caller; the lock pairs with the
      // caller's predicate check so the notify cannot be lost.
      std::lock_guard<std::mutex> Lock(B->DoneMu);
      B->AllDone.notify_all();
    }
  };

  size_t Helpers;
  {
    // One lock round-trip enqueues the helpers for the whole range.
    std::lock_guard<std::mutex> Lock(Mu);
    Helpers = std::min(Workers.size(), N - 1);
    if (MaxLanes != 0)
      Helpers = std::min(Helpers, MaxLanes - 1);
    for (size_t I = 0; I < Helpers; ++I)
      Queue.emplace_back([B, Run] { Run(B); });
  }
  if (Helpers > 0)
    HasWork.notify_all();

  Run(B); // The caller is a full lane; never blocks on a saturated pool.

  std::unique_lock<std::mutex> Lock(B->DoneMu);
  B->AllDone.wait(Lock, [&B] {
    return B->Done.load(std::memory_order_acquire) == B->N;
  });
}

ThreadPool &ThreadPool::global() {
  static ThreadPool Pool(defaultThreads() > 0 ? defaultThreads() - 1 : 0);
  return Pool;
}

size_t ThreadPool::defaultThreads() {
  if (const char *Env = std::getenv("CWS_BUILD_THREADS")) {
    char *End = nullptr;
    long V = std::strtol(Env, &End, 10);
    if (End != Env && *End == '\0' && V >= 1)
      return static_cast<size_t>(V);
  }
  unsigned Hw = std::thread::hardware_concurrency();
  return Hw > 0 ? Hw : 1;
}
