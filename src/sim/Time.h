//===-- sim/Time.h - Simulation time ----------------------------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Integral simulation time. The paper reasons in whole "time units"
/// (Fig. 2 timelines, the Ti estimation table), so CWS uses 64-bit ticks
/// throughout: comparisons are exact and collisions are unambiguous.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_SIM_TIME_H
#define CWS_SIM_TIME_H

#include <cstdint>

namespace cws {

/// One simulated time unit.
using Tick = int64_t;

/// Sentinel for "no deadline" / "never".
inline constexpr Tick TickMax = INT64_MAX / 4;

/// Integer ceil(A / B) for positive B. Used to turn computation volumes
/// into whole-tick execution times ("rounded to nearest not-smaller
/// integer" in the paper).
constexpr Tick ceilDiv(Tick A, Tick B) { return (A + B - 1) / B; }

} // namespace cws

#endif // CWS_SIM_TIME_H
