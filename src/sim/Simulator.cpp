//===-- sim/Simulator.cpp - Discrete event simulation kernel --------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "sim/Simulator.h"
#include "obs/Journal.h"
#include "obs/Metrics.h"
#include "obs/Profiler.h"
#include "obs/TimeSeries.h"
#include "obs/Trace.h"
#include "support/Check.h"

#include <algorithm>
#include <chrono>

using namespace cws;

namespace {
struct SimMetrics {
  obs::Counter &Events = obs::Registry::global().counter(
      "cws_sim_events_total", "simulation events dispatched");
  obs::Gauge &QueueDepth = obs::Registry::global().gauge(
      "cws_sim_queue_depth", "events pending in the simulator queue");
  obs::Gauge &VirtualTicks = obs::Registry::global().gauge(
      "cws_sim_virtual_time_ticks",
      "simulation clock at the end of the last run()");
  obs::Gauge &WallMicros = obs::Registry::global().gauge(
      "cws_sim_wall_micros",
      "wall-clock duration of the last run() (microseconds)");
  static SimMetrics &get() {
    static SimMetrics M;
    return M;
  }
};
} // namespace

EventId Simulator::at(Tick At, EventFn Fn) {
  return Events.schedule(std::max(At, Now), std::move(Fn));
}

EventId Simulator::after(Tick Delay, EventFn Fn) {
  CWS_CHECK(Delay >= 0, "cannot schedule into the past");
  return Events.schedule(Now + Delay, std::move(Fn));
}

size_t Simulator::run(Tick Until) {
  SimMetrics &M = SimMetrics::get();
  obs::Span RunSpan("sim", "sim.run");
  auto T0 = std::chrono::steady_clock::now();
  size_t Executed = 0;
  obs::Tracer &Tr = obs::Tracer::global();
  obs::TimeSeries &Ts = obs::TimeSeries::global();
  while (!Events.empty() && Events.nextTime() <= Until) {
    // Advance the clock before dispatching so handlers scheduling
    // relative work (after()) see the firing time as now().
    Now = Events.nextTime();
    Tr.instant("sim", "sim.event", "vt", Now);
    // Periodic telemetry frames are taken at the tick boundary, before
    // the event dispatches, so they see the state the tick starts from.
    Ts.onTick(Now);
    {
      CWS_PHASE("sim.tick");
      Events.runNext();
    }
    ++Executed;
    M.Events.add();
    M.QueueDepth.set(static_cast<int64_t>(Events.size()));
  }
  M.VirtualTicks.set(Now);
  M.WallMicros.set(std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::steady_clock::now() - T0)
                       .count());
  RunSpan.arg("events", static_cast<int64_t>(Executed));
  RunSpan.arg("virtual_ticks", Now);
  obs::Journal &Jn = obs::Journal::global();
  if (Jn.enabled())
    Jn.append(obs::JournalKind::Note, -1, Now,
              {{"events", static_cast<int64_t>(Executed)}}, "sim.run");
  if (Events.empty() || Now > Until)
    return Executed;
  // The next event lies beyond the horizon: advance the clock to it so a
  // subsequent run() resumes consistently.
  Now = std::max(Now, Until);
  return Executed;
}

bool Simulator::step() {
  if (Events.empty())
    return false;
  Now = Events.nextTime();
  obs::Tracer::global().instant("sim", "sim.event", "vt", Now);
  obs::TimeSeries::global().onTick(Now);
  Events.runNext();
  SimMetrics &M = SimMetrics::get();
  M.Events.add();
  M.QueueDepth.set(static_cast<int64_t>(Events.size()));
  M.VirtualTicks.set(Now);
  return true;
}
