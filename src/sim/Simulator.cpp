//===-- sim/Simulator.cpp - Discrete event simulation kernel --------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "sim/Simulator.h"
#include "support/Check.h"

#include <algorithm>

using namespace cws;

EventId Simulator::at(Tick At, EventFn Fn) {
  return Events.schedule(std::max(At, Now), std::move(Fn));
}

EventId Simulator::after(Tick Delay, EventFn Fn) {
  CWS_CHECK(Delay >= 0, "cannot schedule into the past");
  return Events.schedule(Now + Delay, std::move(Fn));
}

size_t Simulator::run(Tick Until) {
  size_t Executed = 0;
  while (!Events.empty() && Events.nextTime() <= Until) {
    // Advance the clock before dispatching so handlers scheduling
    // relative work (after()) see the firing time as now().
    Now = Events.nextTime();
    Events.runNext();
    ++Executed;
  }
  if (Events.empty() || Now > Until)
    return Executed;
  // The next event lies beyond the horizon: advance the clock to it so a
  // subsequent run() resumes consistently.
  Now = std::max(Now, Until);
  return Executed;
}

bool Simulator::step() {
  if (Events.empty())
    return false;
  Now = Events.nextTime();
  Events.runNext();
  return true;
}
