//===-- sim/EventQueue.cpp - Discrete event queue -------------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "sim/EventQueue.h"
#include "support/Check.h"

#include <algorithm>

using namespace cws;

EventId EventQueue::schedule(Tick At, EventFn Fn) {
  EventId Id = NextId++;
  Handlers.emplace(Id, std::move(Fn));
  Heap.push_back({At, NextSeq++, Id});
  std::push_heap(Heap.begin(), Heap.end(), later);
  return Id;
}

bool EventQueue::cancel(EventId Id) {
  // The heap entry stays behind as a tombstone and is skipped lazily.
  return Handlers.erase(Id) > 0;
}

void EventQueue::skipDead() {
  while (!Heap.empty() && !Handlers.count(Heap.front().Id)) {
    std::pop_heap(Heap.begin(), Heap.end(), later);
    Heap.pop_back();
  }
}

Tick EventQueue::nextTime() {
  skipDead();
  return Heap.empty() ? TickMax : Heap.front().At;
}

Tick EventQueue::runNext() {
  skipDead();
  CWS_CHECK(!Heap.empty(), "runNext on an empty event queue");
  std::pop_heap(Heap.begin(), Heap.end(), later);
  Entry Top = Heap.back();
  Heap.pop_back();
  auto It = Handlers.find(Top.Id);
  CWS_CHECK(It != Handlers.end(), "live heap entry without handler");
  EventFn Fn = std::move(It->second);
  Handlers.erase(It);
  Fn(Top.At);
  return Top.At;
}
