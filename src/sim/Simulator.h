//===-- sim/Simulator.h - Discrete event simulation kernel ------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The discrete event simulation kernel driving the job-flow experiments:
/// a monotonically advancing clock plus an event queue. The paper's own
/// evaluation is a simulation ("we have implemented a simulation
/// environment of the scheduling framework"); this is our substitute.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_SIM_SIMULATOR_H
#define CWS_SIM_SIMULATOR_H

#include "sim/EventQueue.h"
#include "sim/Time.h"

namespace cws {

/// Discrete event simulator with a monotone clock.
class Simulator {
public:
  /// Current simulation time.
  Tick now() const { return Now; }

  /// Schedules \p Fn at absolute time \p At (clamped to now()).
  EventId at(Tick At, EventFn Fn);

  /// Schedules \p Fn after \p Delay ticks.
  EventId after(Tick Delay, EventFn Fn);

  /// Schedules \p Fn at the current tick, behind every event already
  /// queued for it (same-tick events fire in insertion order). This is
  /// the job-flow level's tick barrier: events accumulate a batch and
  /// arm one end-of-tick drain that sees the whole tick's arrivals.
  /// Events inserted *after* the drain (including by the drain itself)
  /// fire later the same tick, so a drain that triggers more same-tick
  /// work simply re-arms.
  EventId atEndOfTick(EventFn Fn) { return at(Now, std::move(Fn)); }

  /// Cancels a pending event.
  bool cancel(EventId Id) { return Events.cancel(Id); }

  /// Runs until the queue drains or the clock passes \p Until.
  /// Returns the number of events executed.
  size_t run(Tick Until = TickMax);

  /// Executes exactly one event if any remain; returns false otherwise.
  bool step();

  /// Number of pending events.
  size_t pending() const { return Events.size(); }

private:
  EventQueue Events;
  Tick Now = 0;
};

} // namespace cws

#endif // CWS_SIM_SIMULATOR_H
