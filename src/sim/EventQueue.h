//===-- sim/EventQueue.h - Discrete event queue -----------------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pending-event set of the discrete event simulator: a binary heap
/// keyed by (time, insertion sequence) so same-tick events fire in
/// submission order, which keeps runs deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_SIM_EVENTQUEUE_H
#define CWS_SIM_EVENTQUEUE_H

#include "sim/Time.h"

#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

namespace cws {

/// An event handler; receives the firing time.
using EventFn = std::function<void(Tick)>;

/// Identifies a scheduled event for cancellation.
using EventId = uint64_t;

/// Min-heap of timed events with stable same-tick ordering and lazy
/// cancellation via tombstones.
class EventQueue {
public:
  /// Schedules \p Fn at \p At. Returns an id usable with cancel().
  EventId schedule(Tick At, EventFn Fn);

  /// Cancels a pending event; returns false if it already fired or was
  /// cancelled before.
  bool cancel(EventId Id);

  /// True when no live events remain.
  bool empty() const { return Handlers.empty(); }

  /// Number of live (non-cancelled, unfired) events.
  size_t size() const { return Handlers.size(); }

  /// Time of the earliest live event; TickMax when empty.
  Tick nextTime();

  /// Pops and runs the earliest live event; returns its time. Requires
  /// !empty().
  Tick runNext();

private:
  struct Entry {
    Tick At;
    uint64_t Seq;
    EventId Id;
  };

  static bool later(const Entry &A, const Entry &B) {
    if (A.At != B.At)
      return A.At > B.At;
    return A.Seq > B.Seq;
  }

  /// Removes cancelled entries from the heap top.
  void skipDead();

  std::vector<Entry> Heap;
  std::unordered_map<EventId, EventFn> Handlers;
  uint64_t NextSeq = 0;
  EventId NextId = 1;
};

} // namespace cws

#endif // CWS_SIM_EVENTQUEUE_H
