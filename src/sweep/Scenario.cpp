//===-- sweep/Scenario.cpp - Declarative scenario grids -------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "sweep/Scenario.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

using namespace cws;
using namespace cws::sweep;

std::string cws::sweep::sweepAxisFlag(const std::string &Axis) {
  static const std::pair<const char *, const char *> Map[] = {
      {"arrival_scale", "--arrival-scale"},
      {"background_scale", "--background-scale"},
      {"fast_share", "--fast-share"},
      {"strategy", "--strategy"},
      {"slack", "--slack"},
      {"jobs", "--jobs"},
      {"invalidation", "--invalidation"},
      {"exec", "--exec"},
      {"shards", "--shards"},
  };
  for (const auto &[Name, Flag] : Map)
    if (Axis == Name)
      return Flag;
  return std::string();
}

/// Axis values land in scenario ids, CSV columns and provenance stamps
/// unquoted, so they must be plain tokens.
static bool tokenShaped(const std::string &Value) {
  if (Value.empty())
    return false;
  for (char C : Value)
    if (C == ',' || C == ';' || C == '=' || C == '+' || C == ' ' ||
        C == '\t' || C == '"')
      return false;
  return true;
}

static std::vector<std::string> splitWords(const std::string &Line) {
  std::vector<std::string> Words;
  size_t Pos = 0;
  while (Pos < Line.size()) {
    while (Pos < Line.size() && (Line[Pos] == ' ' || Line[Pos] == '\t'))
      ++Pos;
    size_t Start = Pos;
    while (Pos < Line.size() && Line[Pos] != ' ' && Line[Pos] != '\t')
      ++Pos;
    if (Pos > Start)
      Words.push_back(Line.substr(Start, Pos - Start));
  }
  return Words;
}

static bool parseUint(const std::string &Word, uint64_t &Out) {
  char *End = nullptr;
  Out = std::strtoull(Word.c_str(), &End, 10);
  return End != Word.c_str() && !*End;
}

bool cws::sweep::parseSweepGrid(const std::string &Text, SweepGrid &Out,
                                std::string &Error) {
  Out = SweepGrid{};
  size_t Pos = 0, LineNo = 0;
  while (Pos < Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    if (Eol == std::string::npos)
      Eol = Text.size();
    std::string Line = Text.substr(Pos, Eol - Pos);
    Pos = Eol + 1;
    ++LineNo;
    if (size_t Hash = Line.find('#'); Hash != std::string::npos)
      Line = Line.substr(0, Hash);
    std::vector<std::string> Words = splitWords(Line);
    if (Words.empty())
      continue;
    const std::string &Key = Words[0];
    auto Err = [&](const std::string &What) {
      Error = "line " + std::to_string(LineNo) + ": " + What;
      return false;
    };
    if (Key == "axis") {
      if (Words.size() < 3)
        return Err("axis needs a name and at least one value");
      SweepAxis Axis;
      Axis.Name = Words[1];
      if (sweepAxisFlag(Axis.Name).empty())
        return Err("unknown axis '" + Axis.Name +
                   "' (arrival_scale, background_scale, fast_share, "
                   "strategy, slack, jobs, invalidation, exec, shards)");
      for (const SweepAxis &Prior : Out.Axes)
        if (Prior.Name == Axis.Name)
          return Err("duplicate axis '" + Axis.Name + "'");
      for (size_t I = 2; I < Words.size(); ++I) {
        if (!tokenShaped(Words[I]))
          return Err("axis value '" + Words[I] +
                     "' is not token-shaped (no , ; = + or quotes)");
        for (size_t J = 2; J < I; ++J)
          if (Words[J] == Words[I])
            return Err("duplicate value '" + Words[I] + "' on axis '" +
                       Axis.Name + "'");
        Axis.Values.push_back(Words[I]);
      }
      Out.Axes.push_back(std::move(Axis));
      continue;
    }
    if (Words.size() != 2)
      return Err("expected '" + Key + " <value>'");
    if (Key == "seeds") {
      if (!parseUint(Words[1], Out.Seeds) || Out.Seeds == 0)
        return Err("seeds must be a positive integer");
    } else if (Key == "base_seed") {
      if (!parseUint(Words[1], Out.BaseSeed))
        return Err("bad base_seed '" + Words[1] + "'");
    } else if (Key == "jobs") {
      uint64_t Jobs = 0;
      if (!parseUint(Words[1], Jobs) || Jobs == 0)
        return Err("jobs must be a positive integer");
      Out.Jobs = static_cast<int64_t>(Jobs);
    } else if (Key == "slack") {
      char *End = nullptr;
      Out.Slack = std::strtod(Words[1].c_str(), &End);
      if (End == Words[1].c_str() || *End || Out.Slack <= 0)
        return Err("bad slack '" + Words[1] + "'");
    } else if (Key == "sample_every") {
      uint64_t Every = 0;
      if (!parseUint(Words[1], Every) || Every == 0)
        return Err("sample_every must be a positive integer");
      Out.SampleEvery = static_cast<int64_t>(Every);
    } else {
      return Err("unknown directive '" + Key +
                 "' (axis, seeds, base_seed, jobs, slack, sample_every)");
    }
  }
  return true;
}

size_t cws::sweep::sweepScenarioCount(const SweepGrid &Grid) {
  size_t Count = 1;
  for (const SweepAxis &Axis : Grid.Axes)
    Count *= Axis.Values.size();
  return Count;
}

std::vector<SweepRunSpec> cws::sweep::expandSweepGrid(const SweepGrid &Grid) {
  std::vector<SweepRunSpec> Runs;
  size_t Scenarios = sweepScenarioCount(Grid);
  Runs.reserve(Scenarios * Grid.Seeds);
  // Odometer over the axes: the last-declared axis cycles fastest.
  for (size_t S = 0; S < Scenarios; ++S) {
    SweepRunSpec Base;
    Base.ScenarioIndex = S;
    size_t Rem = S;
    for (size_t A = Grid.Axes.size(); A-- > 0;) {
      const SweepAxis &Axis = Grid.Axes[A];
      size_t Idx = Rem % Axis.Values.size();
      Rem /= Axis.Values.size();
      Base.Axes.emplace_back(Axis.Name, Axis.Values[Idx]);
    }
    // The odometer walked axes back-to-front; ids and flags keep
    // declaration order.
    std::reverse(Base.Axes.begin(), Base.Axes.end());
    for (const auto &[Name, Value] : Base.Axes) {
      if (!Base.ScenarioId.empty())
        Base.ScenarioId += '+';
      Base.ScenarioId += Name + "=" + Value;
      Base.SimArgs.push_back(sweepAxisFlag(Name));
      Base.SimArgs.push_back(Value);
    }
    if (Base.ScenarioId.empty())
      Base.ScenarioId = "default";
    auto HasAxis = [&Base](const char *Name) {
      for (const auto &[Axis, Value] : Base.Axes)
        if (Axis == Name)
          return true;
      return false;
    };
    if (Grid.Jobs > 0 && !HasAxis("jobs")) {
      Base.SimArgs.push_back("--jobs");
      Base.SimArgs.push_back(std::to_string(Grid.Jobs));
    }
    if (Grid.Slack > 0 && !HasAxis("slack")) {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%g", Grid.Slack);
      Base.SimArgs.push_back("--slack");
      Base.SimArgs.push_back(Buf);
    }
    if (Grid.SampleEvery > 0) {
      Base.SimArgs.push_back("--sample-every");
      Base.SimArgs.push_back(std::to_string(Grid.SampleEvery));
    }
    Base.SimArgs.push_back("--scenario");
    Base.SimArgs.push_back(Base.ScenarioId);
    for (uint64_t R = 0; R < Grid.Seeds; ++R) {
      SweepRunSpec Run = Base;
      Run.Replica = R;
      Run.Seed = Grid.BaseSeed + R;
      Run.SimArgs.push_back("--seed");
      Run.SimArgs.push_back(std::to_string(Run.Seed));
      Runs.push_back(std::move(Run));
    }
  }
  return Runs;
}
