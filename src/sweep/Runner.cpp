//===-- sweep/Runner.cpp - Worker-process sweep execution -----------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "sweep/Runner.h"
#include "sweep/Stats.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace cws;
using namespace cws::sweep;

static bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  Out = Buffer.str();
  return true;
}

/// mkdir -p: creates \p Path and any missing parents.
static bool makeDirs(const std::string &Path, std::string &Error) {
  std::string Partial;
  size_t Pos = 0;
  while (Pos <= Path.size()) {
    size_t Slash = Path.find('/', Pos);
    if (Slash == std::string::npos)
      Slash = Path.size();
    Partial = Path.substr(0, Slash);
    Pos = Slash + 1;
    if (Partial.empty() || Partial == ".")
      continue;
    if (mkdir(Partial.c_str(), 0755) != 0 && errno != EEXIST) {
      Error = "cannot create directory '" + Partial +
              "': " + std::strerror(errno);
      return false;
    }
  }
  return true;
}

namespace {
/// Paths and exec state of one run.
struct RunState {
  std::string Journal;
  std::string Series;
  std::string Log;
  pid_t Pid = -1;
  int ExitStatus = -1;
  bool Done = false;
};
} // namespace

/// Spawns `cws-sim` for run \p R of \p Spec: stdout/stderr go to the
/// run log, artifacts to the run paths. Returns false on fork failure.
static bool spawnRun(const SweepOptions &Opts, const SweepRunSpec &Spec,
                     RunState &State, std::string &Error) {
  std::vector<std::string> Args;
  Args.push_back(Opts.SimBinary);
  for (const std::string &A : Spec.SimArgs)
    Args.push_back(A);
  Args.push_back("--journal");
  Args.push_back(State.Journal);
  Args.push_back("--timeseries");
  Args.push_back(State.Series);
  std::vector<char *> Argv;
  for (std::string &A : Args)
    Argv.push_back(A.data());
  Argv.push_back(nullptr);

  pid_t Pid = fork();
  if (Pid < 0) {
    Error = std::string("fork failed: ") + std::strerror(errno);
    return false;
  }
  if (Pid == 0) {
    int Fd = open(State.Log.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (Fd >= 0) {
      dup2(Fd, STDOUT_FILENO);
      dup2(Fd, STDERR_FILENO);
      if (Fd > STDERR_FILENO)
        close(Fd);
    }
    execv(Argv[0], Argv.data());
    // Only reached when exec fails; 127 is the shell's "not found".
    _exit(127);
  }
  State.Pid = Pid;
  return true;
}

bool cws::sweep::runSweep(const SweepGrid &Grid, const SweepOptions &Opts,
                          obs::SweepStore &Out, std::string &Error) {
  std::vector<SweepRunSpec> Specs = expandSweepGrid(Grid);
  if (Specs.empty()) {
    Error = "the grid expands to no runs";
    return false;
  }
  if (Opts.SimBinary.empty()) {
    Error = "no simulator binary configured";
    return false;
  }
  if (!makeDirs(Opts.RunsDir, Error))
    return false;

  std::vector<RunState> States(Specs.size());
  for (size_t R = 0; R < Specs.size(); ++R) {
    std::string Stem = Opts.RunsDir + "/run-" + std::to_string(R);
    States[R].Journal = Stem + ".journal.jsonl";
    States[R].Series = Stem + ".ts.csv";
    States[R].Log = Stem + ".log";
  }

  //===--- Fan out: at most Workers children at once ---------------------===//
  unsigned Workers = Opts.Workers ? Opts.Workers : 1;
  size_t Next = 0, Running = 0, Completed = 0;
  std::map<pid_t, size_t> ByPid;
  bool SpawnFailed = false;
  while ((Next < Specs.size() && !SpawnFailed) || Running > 0) {
    while (!SpawnFailed && Next < Specs.size() && Running < Workers) {
      if (!spawnRun(Opts, Specs[Next], States[Next], Error)) {
        SpawnFailed = true;
        break;
      }
      ByPid.emplace(States[Next].Pid, Next);
      ++Next;
      ++Running;
    }
    if (Running == 0)
      break;
    int Status = 0;
    pid_t Pid = waitpid(-1, &Status, 0);
    if (Pid < 0) {
      if (errno == EINTR)
        continue;
      Error = std::string("waitpid failed: ") + std::strerror(errno);
      return false;
    }
    auto It = ByPid.find(Pid);
    if (It == ByPid.end())
      continue;
    size_t R = It->second;
    ByPid.erase(It);
    --Running;
    ++Completed;
    States[R].Done = true;
    States[R].ExitStatus =
        WIFEXITED(Status) ? WEXITSTATUS(Status) : 128 + WTERMSIG(Status);
    if (Opts.Progress)
      Opts.Progress("run " + std::to_string(Completed) + "/" +
                    std::to_string(Specs.size()) + " done: " +
                    Specs[R].ScenarioId + " seed " +
                    std::to_string(Specs[R].Seed));
  }
  if (SpawnFailed)
    return false;

  //===--- Pool in run-index order ---------------------------------------===//
  size_t Scenarios = sweepScenarioCount(Grid);
  std::vector<std::pair<std::string,
                        std::vector<std::pair<std::string, std::string>>>>
      ScenarioList(Scenarios);
  for (const SweepRunSpec &Spec : Specs)
    if (ScenarioList[Spec.ScenarioIndex].first.empty())
      ScenarioList[Spec.ScenarioIndex] = {Spec.ScenarioId, Spec.Axes};
  SweepAccumulator Acc(std::move(ScenarioList), Grid.Seeds);

  // One config hash per scenario; the first replica sets it.
  std::vector<std::string> ScenarioHash(Scenarios);
  for (size_t R = 0; R < Specs.size(); ++R) {
    const SweepRunSpec &Spec = Specs[R];
    const RunState &State = States[R];
    auto Fail = [&](const std::string &What) {
      Error = "run " + std::to_string(R) + " (" + Spec.ScenarioId +
              " seed " + std::to_string(Spec.Seed) + "): " + What +
              " (see " + State.Log + ")";
      return false;
    };
    if (State.ExitStatus != 0)
      return Fail("cws-sim exited with status " +
                  std::to_string(State.ExitStatus));

    std::string Text;
    if (!readFile(State.Journal, Text))
      return Fail("cannot read journal '" + State.Journal + "'");
    obs::ParsedJournal J;
    std::string ParseError;
    if (!obs::parseJournalJsonl(Text, J, ParseError))
      return Fail("journal: " + ParseError);
    obs::ParsedTimeSeries Ts;
    if (!readFile(State.Series, Text))
      return Fail("cannot read time series '" + State.Series + "'");
    if (!obs::parseTimeSeriesCsv(Text, Ts, ParseError))
      return Fail("time series: " + ParseError);

    // Provenance gate: pooled statistics must never mix scenarios,
    // configs or unexpected seeds.
    if (!J.Prov.valid() || !Ts.Prov.valid())
      return Fail("artifact carries no provenance stamp");
    if (J.Prov.Seed != Spec.Seed)
      return Fail("journal stamped with seed " +
                  std::to_string(J.Prov.Seed) + ", expected " +
                  std::to_string(Spec.Seed));
    if (J.Prov.ScenarioId != Spec.ScenarioId)
      return Fail("journal stamped with scenario '" + J.Prov.ScenarioId +
                  "'");
    if (!J.Prov.sameScenario(Ts.Prov) || J.Prov.Seed != Ts.Prov.Seed)
      return Fail("journal and time-series stamps disagree");
    std::string &Hash = ScenarioHash[Spec.ScenarioIndex];
    if (Hash.empty())
      Hash = J.Prov.ConfigHash;
    else if (Hash != J.Prov.ConfigHash)
      return Fail("config hash " + J.Prov.ConfigHash +
                  " diverges from the scenario's " + Hash);

    Acc.addRun(Spec.ScenarioIndex, obs::computeIndicators(J, Ts));
  }

  Out = Acc.finalize();

  if (!Opts.KeepRuns) {
    for (const RunState &State : States) {
      unlink(State.Journal.c_str());
      unlink(State.Series.c_str());
      unlink(State.Log.c_str());
    }
    rmdir(Opts.RunsDir.c_str()); // only removes it when now empty
  }
  return true;
}
