//===-- sweep/Stats.cpp - Pooled per-scenario statistics ------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "sweep/Stats.h"
#include "support/Check.h"
#include "support/Stats.h"

#include <algorithm>
#include <cmath>

using namespace cws;
using namespace cws::sweep;

SweepAccumulator::SweepAccumulator(
    std::vector<std::pair<std::string,
                          std::vector<std::pair<std::string, std::string>>>>
        Scenarios,
    uint64_t Seeds)
    : Scenarios(std::move(Scenarios)), Seeds(Seeds) {
  Samples.resize(this->Scenarios.size());
}

void SweepAccumulator::addRun(size_t ScenarioIndex,
                              const std::map<std::string, double> &Indicators) {
  CWS_CHECK(ScenarioIndex < Samples.size(), "scenario index out of range");
  ++Runs;
  for (const auto &[Name, Value] : Indicators)
    Samples[ScenarioIndex][Name].push_back(Value);
}

void SweepAccumulator::merge(const SweepAccumulator &Other) {
  CWS_CHECK(Other.Samples.size() == Samples.size(),
            "merging accumulators of different scenario lists");
  Runs += Other.Runs;
  for (size_t S = 0; S < Samples.size(); ++S)
    for (const auto &[Name, Values] : Other.Samples[S]) {
      std::vector<double> &Mine = Samples[S][Name];
      Mine.insert(Mine.end(), Values.begin(), Values.end());
    }
}

obs::SweepStore SweepAccumulator::finalize() const {
  obs::SweepStore Store;
  Store.Seeds = Seeds;
  Store.Runs = Runs;
  for (size_t S = 0; S < Scenarios.size(); ++S) {
    obs::SweepScenario Sc;
    Sc.Id = Scenarios[S].first;
    Sc.Axes = Scenarios[S].second;
    for (const auto &[Name, Raw] : Samples[S]) {
      // Sort first: every statistic below is a function of the sorted
      // sample vector, so insertion order (worker scheduling, merge
      // splits) can never leak into the result.
      std::vector<double> Sorted = Raw;
      std::sort(Sorted.begin(), Sorted.end());
      obs::SweepIndicatorStats St;
      St.N = Sorted.size();
      if (St.N == 0)
        continue;
      double Sum = 0.0;
      for (double X : Sorted)
        Sum += X;
      St.Mean = Sum / static_cast<double>(St.N);
      if (St.N > 1) {
        double Sq = 0.0;
        for (double X : Sorted)
          Sq += (X - St.Mean) * (X - St.Mean);
        St.Stddev = std::sqrt(Sq / static_cast<double>(St.N - 1));
        St.Ci95 = tCritical95(St.N - 1) * St.Stddev /
                  std::sqrt(static_cast<double>(St.N));
      }
      St.P50 = quantile(Sorted, 0.50);
      St.P90 = quantile(Sorted, 0.90);
      St.P99 = quantile(Sorted, 0.99);
      St.Min = Sorted.front();
      St.Max = Sorted.back();
      Sc.Indicators.emplace(Name, St);
    }
    Store.Scenarios.push_back(std::move(Sc));
  }
  return Store;
}
