//===-- sweep/Scenario.h - Declarative scenario grids -----------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The declarative scenario-grid format behind `cws-sweep` and its
/// expansion into concrete runs. A grid file names sweep axes and the
/// replication depth:
///
///   # comments and blank lines are ignored
///   axis arrival_scale 1.0 1.5 2.0
///   axis strategy S1 S2 MS1
///   axis fast_share 0.20 0.33
///   seeds 5          # seed replicas per scenario
///   base_seed 42     # replica seeds are base_seed, base_seed+1, ...
///   jobs 60          # optional fixed knobs forwarded to every run
///   slack 2.0
///
/// Expansion is the cartesian product of the axis values in declaration
/// order (later axes cycle fastest), times the seed replicas. Every
/// scenario gets a token-shaped id like `arrival_scale=1.0+strategy=S1`
/// that survives CSV columns and provenance stamps unquoted.
///
/// Axes map 1:1 onto `cws-sim` flags (see `sweepAxisFlag`); the
/// simulator itself applies them, so a sweep-spawned run and a direct
/// `cws-sim` invocation with the same flags are the same run.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_SWEEP_SCENARIO_H
#define CWS_SWEEP_SCENARIO_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace cws {
namespace sweep {

/// One sweep axis: a named knob and the values it takes.
struct SweepAxis {
  std::string Name;
  std::vector<std::string> Values;
};

/// A parsed scenario grid.
struct SweepGrid {
  std::vector<SweepAxis> Axes;
  /// Seed replicas per scenario.
  uint64_t Seeds = 5;
  /// Seed of the first replica; replica r runs with BaseSeed + r.
  uint64_t BaseSeed = 42;
  /// Fixed knobs forwarded to every run (0 / negative = tool default).
  int64_t Jobs = 0;
  double Slack = 0.0;
  int64_t SampleEvery = 0;
};

/// The `cws-sim` flag an axis name drives ("arrival_scale" ->
/// "--arrival-scale"), empty for unknown axes. Known axes:
/// arrival_scale, background_scale, fast_share, strategy, slack, jobs,
/// invalidation, exec.
std::string sweepAxisFlag(const std::string &Axis);

/// Parses a grid file. Returns false and sets \p Error (with a 1-based
/// line number) on malformed input, unknown axes, duplicate axes,
/// non-token values, or an empty grid.
bool parseSweepGrid(const std::string &Text, SweepGrid &Out,
                    std::string &Error);

/// One concrete run of an expanded grid.
struct SweepRunSpec {
  /// Index into the expanded scenario list.
  size_t ScenarioIndex = 0;
  /// Token-shaped scenario id ("arrival_scale=1.0+strategy=S1").
  std::string ScenarioId;
  /// Axis name -> value, in grid declaration order.
  std::vector<std::pair<std::string, std::string>> Axes;
  /// This replica's seed.
  uint64_t Seed = 0;
  /// Replica index within the scenario (0-based).
  uint64_t Replica = 0;
  /// `cws-sim` flags realizing the scenario (axis flags plus the grid's
  /// fixed knobs, seed and scenario id; artifact paths are the
  /// runner's).
  std::vector<std::string> SimArgs;
};

/// Expands \p Grid into runs: scenarios in cartesian-product order,
/// each with `Grid.Seeds` consecutive replicas — run index =
/// scenario index * Seeds + replica. Deterministic.
std::vector<SweepRunSpec> expandSweepGrid(const SweepGrid &Grid);

/// Number of scenarios `expandSweepGrid` produces (product of axis
/// sizes; 1 for an axis-free grid).
size_t sweepScenarioCount(const SweepGrid &Grid);

} // namespace sweep
} // namespace cws

#endif // CWS_SWEEP_SCENARIO_H
