//===-- sweep/Runner.h - Worker-process sweep execution ---------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fans an expanded scenario grid across worker processes and pools the
/// results. Each run is one `cws-sim` child process (fork/exec) writing
/// its journal and time series into the runs directory; at most
/// `Workers` children run at once. Pooling happens afterwards in run
/// index order, in the parent: each run's artifacts are parsed with the
/// `obs` parsers, the provenance stamps are verified (right seed, right
/// scenario id, one config hash per scenario — any mismatch aborts the
/// sweep with an error naming the run), and the run's indicators join
/// the accumulator. Because the simulator is deterministic per seed and
/// pooling is order-fixed and order-insensitive (sweep/Stats.h), the
/// resulting store is byte-identical at any worker count.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_SWEEP_RUNNER_H
#define CWS_SWEEP_RUNNER_H

#include "obs/Report.h"
#include "sweep/Scenario.h"

#include <functional>
#include <string>

namespace cws {
namespace sweep {

/// Options of one sweep execution.
struct SweepOptions {
  /// Path of the `cws-sim` binary to spawn.
  std::string SimBinary;
  /// Directory for per-run artifacts (created if missing); run R writes
  /// `run-R.journal.jsonl`, `run-R.ts.csv` and `run-R.log` there.
  std::string RunsDir;
  /// Maximum concurrent worker processes.
  unsigned Workers = 2;
  /// Keep per-run artifacts after pooling (default: delete them).
  bool KeepRuns = false;
  /// Optional progress sink (one line per completed run).
  std::function<void(const std::string &)> Progress;
};

/// Expands \p Grid, runs every replica through a worker process and
/// pools the statistics into \p Out. Returns false and sets \p Error on
/// the first failure: an unspawnable or failing child, unreadable or
/// unparsable artifacts, a missing provenance stamp, or a provenance
/// mismatch (wrong seed / scenario, diverging config hash within a
/// scenario, journal and series disagreeing).
bool runSweep(const SweepGrid &Grid, const SweepOptions &Opts,
              obs::SweepStore &Out, std::string &Error);

} // namespace sweep
} // namespace cws

#endif // CWS_SWEEP_RUNNER_H
