//===-- sweep/Stats.h - Pooled per-scenario statistics ----------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pools per-run QoS indicators into the sweep statistics store. The
/// accumulator keeps every raw sample and finalizes by sorting each
/// indicator's samples first, so every derived statistic — mean, sample
/// stddev, 95% CI half-width, exact p50/p90/p99 quantiles, extrema —
/// depends only on the sample *multiset*, never on arrival order. That
/// is what makes sweep results identical at any worker-process count
/// and lets `merge` (plain concatenation) reproduce the sequential
/// result exactly.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_SWEEP_STATS_H
#define CWS_SWEEP_STATS_H

#include "obs/Report.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cws {
namespace sweep {

/// Accumulates per-run indicator samples for a fixed scenario list.
class SweepAccumulator {
public:
  /// \p Scenarios: (id, axes) of every scenario, in grid order.
  explicit SweepAccumulator(
      std::vector<std::pair<std::string,
                            std::vector<std::pair<std::string, std::string>>>>
          Scenarios,
      uint64_t Seeds);

  /// Adds one run's indicator map (from `obs::computeIndicators`) to
  /// scenario \p ScenarioIndex.
  void addRun(size_t ScenarioIndex,
              const std::map<std::string, double> &Indicators);

  /// Concatenates \p Other's samples (same scenario list required).
  /// finalize() after merging equals finalize() after sequential
  /// addRun calls in any interleaving.
  void merge(const SweepAccumulator &Other);

  /// Runs added so far.
  uint64_t runs() const { return Runs; }

  /// Derives the statistics store: per indicator N, mean, sample
  /// stddev, CI95 half-width (`tCritical95(N-1) * stddev / sqrt(N)`,
  /// 0 for N == 1), exact p50/p90/p99, min, max.
  obs::SweepStore finalize() const;

private:
  std::vector<std::pair<std::string,
                        std::vector<std::pair<std::string, std::string>>>>
      Scenarios;
  uint64_t Seeds;
  uint64_t Runs = 0;
  /// Per scenario: indicator name -> raw samples.
  std::vector<std::map<std::string, std::vector<double>>> Samples;
};

} // namespace sweep
} // namespace cws

#endif // CWS_SWEEP_STATS_H
