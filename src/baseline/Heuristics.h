//===-- baseline/Heuristics.h - Independent-task heuristics -----*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classic static mapping heuristics for independent tasks on
/// heterogeneous nodes — OLB, MET, MCT, Min-Min, Max-Min and Sufferage —
/// from the comparison study the paper cites as [13] (Braun et al.).
/// They serve as structure-blind baselines for the critical works
/// method in the ablation bench.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_BASELINE_HEURISTICS_H
#define CWS_BASELINE_HEURISTICS_H

#include "sim/Time.h"

#include <cstddef>
#include <vector>

namespace cws {

/// The mapping heuristics of Braun et al.
enum class MappingHeuristic { OLB, MET, MCT, MinMin, MaxMin, Sufferage };

/// Display name ("olb" ... "sufferage").
const char *mappingHeuristicName(MappingHeuristic H);

/// All heuristics, for sweeps.
inline constexpr MappingHeuristic AllMappingHeuristics[] = {
    MappingHeuristic::OLB,    MappingHeuristic::MET,
    MappingHeuristic::MCT,    MappingHeuristic::MinMin,
    MappingHeuristic::MaxMin, MappingHeuristic::Sufferage,
};

/// Outcome of mapping a task set.
struct MappingResult {
  /// Node index per task.
  std::vector<unsigned> NodeOf;
  std::vector<Tick> Start;
  std::vector<Tick> Finish;
  Tick Makespan = 0;
};

/// Maps independent tasks using \p H.
///
/// \p Etc is the expected-time-to-compute matrix (Etc[task][node]);
/// \p Ready gives each node's availability time. Tasks run back to back
/// on their node.
MappingResult mapIndependentTasks(const std::vector<std::vector<Tick>> &Etc,
                                  std::vector<Tick> Ready,
                                  MappingHeuristic H);

} // namespace cws

#endif // CWS_BASELINE_HEURISTICS_H
