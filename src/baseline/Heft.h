//===-- baseline/Heft.h - HEFT list scheduler -------------------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// HEFT (heterogeneous earliest finish time), the standard DAG list
/// scheduler, as the structure-aware baseline: upward ranks order the
/// tasks, each is placed on the node with the earliest insertion-based
/// finish time. Unlike the critical works method it optimizes makespan
/// only — no cost criterion, no alternative supporting schedules.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_BASELINE_HEFT_H
#define CWS_BASELINE_HEFT_H

#include "core/Distribution.h"
#include "sim/Time.h"

namespace cws {

class Grid;
class Job;
class Network;

/// Result of a HEFT run.
struct HeftResult {
  Distribution Dist;
  Tick Makespan = 0;
  /// True when the schedule respects the job deadline.
  bool MeetsDeadline = false;
};

/// Schedules \p J on a copy of \p Env (existing reservations are
/// respected); placements start no earlier than max(\p Now, release).
HeftResult scheduleHeft(const Job &J, const Grid &Env, const Network &Net,
                        Tick Now = 0);

} // namespace cws

#endif // CWS_BASELINE_HEFT_H
