//===-- baseline/Heuristics.cpp - Independent-task heuristics -------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "baseline/Heuristics.h"
#include "support/Check.h"

#include <algorithm>
#include <limits>

using namespace cws;

const char *cws::mappingHeuristicName(MappingHeuristic H) {
  switch (H) {
  case MappingHeuristic::OLB:
    return "olb";
  case MappingHeuristic::MET:
    return "met";
  case MappingHeuristic::MCT:
    return "mct";
  case MappingHeuristic::MinMin:
    return "min-min";
  case MappingHeuristic::MaxMin:
    return "max-min";
  case MappingHeuristic::Sufferage:
    return "sufferage";
  }
  CWS_UNREACHABLE("unknown mapping heuristic");
}

namespace {

/// Shared assignment bookkeeping.
struct Mapper {
  const std::vector<std::vector<Tick>> &Etc;
  std::vector<Tick> Ready;
  MappingResult Result;

  Mapper(const std::vector<std::vector<Tick>> &Etc, std::vector<Tick> Ready)
      : Etc(Etc), Ready(std::move(Ready)) {
    size_t Tasks = Etc.size();
    Result.NodeOf.assign(Tasks, 0);
    Result.Start.assign(Tasks, 0);
    Result.Finish.assign(Tasks, 0);
  }

  size_t nodes() const { return Ready.size(); }

  void assign(size_t Task, size_t Node) {
    Result.NodeOf[Task] = static_cast<unsigned>(Node);
    Result.Start[Task] = Ready[Node];
    Result.Finish[Task] = Ready[Node] + Etc[Task][Node];
    Ready[Node] = Result.Finish[Task];
    Result.Makespan = std::max(Result.Makespan, Result.Finish[Task]);
  }

  /// Node minimizing completion time of \p Task.
  size_t bestCompletionNode(size_t Task) const {
    size_t Best = 0;
    Tick BestCt = std::numeric_limits<Tick>::max();
    for (size_t Node = 0; Node < nodes(); ++Node) {
      Tick Ct = Ready[Node] + Etc[Task][Node];
      if (Ct < BestCt) {
        BestCt = Ct;
        Best = Node;
      }
    }
    return Best;
  }

  Tick completionOn(size_t Task, size_t Node) const {
    return Ready[Node] + Etc[Task][Node];
  }
};

} // namespace

MappingResult
cws::mapIndependentTasks(const std::vector<std::vector<Tick>> &Etc,
                         std::vector<Tick> Ready, MappingHeuristic H) {
  CWS_CHECK(!Ready.empty(), "mapping needs at least one node");
  for (const auto &Row : Etc)
    CWS_CHECK(Row.size() == Ready.size(), "ragged ETC matrix");

  Mapper M(Etc, std::move(Ready));
  size_t Tasks = Etc.size();

  switch (H) {
  case MappingHeuristic::OLB:
    // Each task, in order, to the node that becomes available soonest.
    for (size_t Task = 0; Task < Tasks; ++Task) {
      size_t Best = static_cast<size_t>(
          std::min_element(M.Ready.begin(), M.Ready.end()) - M.Ready.begin());
      M.assign(Task, Best);
    }
    break;

  case MappingHeuristic::MET:
    // Each task to its fastest node, ignoring load.
    for (size_t Task = 0; Task < Tasks; ++Task) {
      size_t Best = static_cast<size_t>(
          std::min_element(Etc[Task].begin(), Etc[Task].end()) -
          Etc[Task].begin());
      M.assign(Task, Best);
    }
    break;

  case MappingHeuristic::MCT:
    // Each task, in order, to the node with minimum completion time.
    for (size_t Task = 0; Task < Tasks; ++Task)
      M.assign(Task, M.bestCompletionNode(Task));
    break;

  case MappingHeuristic::MinMin:
  case MappingHeuristic::MaxMin: {
    std::vector<bool> Done(Tasks, false);
    for (size_t Round = 0; Round < Tasks; ++Round) {
      size_t PickTask = SIZE_MAX;
      size_t PickNode = 0;
      Tick PickCt = 0;
      for (size_t Task = 0; Task < Tasks; ++Task) {
        if (Done[Task])
          continue;
        size_t Node = M.bestCompletionNode(Task);
        Tick Ct = M.completionOn(Task, Node);
        bool Better =
            PickTask == SIZE_MAX ||
            (H == MappingHeuristic::MinMin ? Ct < PickCt : Ct > PickCt);
        if (Better) {
          PickTask = Task;
          PickNode = Node;
          PickCt = Ct;
        }
      }
      Done[PickTask] = true;
      M.assign(PickTask, PickNode);
    }
    break;
  }

  case MappingHeuristic::Sufferage: {
    std::vector<bool> Done(Tasks, false);
    for (size_t Round = 0; Round < Tasks; ++Round) {
      size_t PickTask = SIZE_MAX;
      size_t PickNode = 0;
      Tick PickSufferage = -1;
      for (size_t Task = 0; Task < Tasks; ++Task) {
        if (Done[Task])
          continue;
        // Best and second-best completion times.
        Tick Best = std::numeric_limits<Tick>::max();
        Tick Second = std::numeric_limits<Tick>::max();
        size_t BestNode = 0;
        for (size_t Node = 0; Node < M.nodes(); ++Node) {
          Tick Ct = M.completionOn(Task, Node);
          if (Ct < Best) {
            Second = Best;
            Best = Ct;
            BestNode = Node;
          } else if (Ct < Second) {
            Second = Ct;
          }
        }
        Tick Sufferage =
            Second == std::numeric_limits<Tick>::max() ? 0 : Second - Best;
        if (Sufferage > PickSufferage) {
          PickSufferage = Sufferage;
          PickTask = Task;
          PickNode = BestNode;
        }
      }
      Done[PickTask] = true;
      M.assign(PickTask, PickNode);
    }
    break;
  }
  }
  return std::move(M.Result);
}
