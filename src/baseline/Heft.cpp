//===-- baseline/Heft.cpp - HEFT list scheduler ---------------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "baseline/Heft.h"
#include "core/CostModel.h"
#include "job/Job.h"
#include "resource/Grid.h"
#include "resource/Network.h"
#include "support/Check.h"

#include <algorithm>
#include <limits>

using namespace cws;

namespace {

/// Upward rank: mean execution time plus the maximum over successors of
/// (mean transfer + successor rank).
std::vector<double> upwardRanks(const Job &J, const Grid &Env,
                                const Network &Net) {
  double MeanInvPerf = 0.0;
  for (const auto &N : Env.nodes())
    MeanInvPerf += 1.0 / N.relPerf();
  MeanInvPerf /= static_cast<double>(Env.size());

  // Mean transfer multiplier: a transfer is free on the same node, full
  // price otherwise; with n nodes the chance of distinct nodes is
  // (n - 1) / n.
  double DistinctShare =
      Env.size() > 1
          ? static_cast<double>(Env.size() - 1) / static_cast<double>(Env.size())
          : 0.0;

  std::vector<double> Rank(J.taskCount(), 0.0);
  std::vector<unsigned> Order = J.topoOrder();
  for (auto It = Order.rbegin(); It != Order.rend(); ++It) {
    unsigned TaskId = *It;
    double Best = 0.0;
    for (size_t EdgeIdx : J.outEdges(TaskId)) {
      const DataEdge &E = J.edge(EdgeIdx);
      double Tr = DistinctShare *
                  static_cast<double>(Net.transferTicks(E.BaseTransfer, 0,
                                                        Env.size() > 1 ? 1 : 0));
      Best = std::max(Best, Tr + Rank[E.Dst]);
    }
    Rank[TaskId] =
        static_cast<double>(J.task(TaskId).RefTicks) * MeanInvPerf + Best;
  }
  return Rank;
}

} // namespace

HeftResult cws::scheduleHeft(const Job &J, const Grid &Env, const Network &Net,
                             Tick Now) {
  HeftResult Result;
  if (J.taskCount() == 0) {
    Result.MeetsDeadline = true;
    return Result;
  }
  CWS_CHECK(J.isAcyclic(), "HEFT needs an acyclic job");
  CWS_CHECK(!Env.empty(), "HEFT needs nodes");

  Grid Scratch = Env;
  CostModel Cost(Scratch);
  Tick Release = std::max(Now, J.release());

  // Priority order: descending upward rank, ties by task id. Stable
  // against the topological order because ranks strictly decrease along
  // edges.
  std::vector<double> Rank = upwardRanks(J, Scratch, Net);
  std::vector<unsigned> Order(J.taskCount());
  for (unsigned I = 0; I < J.taskCount(); ++I)
    Order[I] = I;
  std::stable_sort(Order.begin(), Order.end(), [&](unsigned A, unsigned B) {
    if (Rank[A] != Rank[B])
      return Rank[A] > Rank[B];
    return A < B;
  });

  constexpr OwnerId HeftOwner = 0xbeef;
  for (unsigned TaskId : Order) {
    unsigned BestNode = 0;
    Tick BestStart = 0;
    Tick BestFinish = std::numeric_limits<Tick>::max();
    for (const auto &N : Scratch.nodes()) {
      Tick Ready = Release;
      for (size_t EdgeIdx : J.inEdges(TaskId)) {
        const DataEdge &E = J.edge(EdgeIdx);
        const Placement *Src = Result.Dist.find(E.Src);
        CWS_CHECK(Src, "HEFT order violated precedence");
        Tick Tr = Net.transferTicks(E.BaseTransfer, Src->NodeId, N.id());
        Ready = std::max(Ready, Src->End + Tr);
      }
      Tick Dur = N.execTicks(J.task(TaskId).RefTicks);
      Tick Start = N.timeline().earliestFit(Ready, Dur);
      if (Start + Dur < BestFinish) {
        BestFinish = Start + Dur;
        BestStart = Start;
        BestNode = N.id();
      }
    }
    Tick Dur = BestFinish - BestStart;
    bool Reserved =
        Scratch.node(BestNode).timeline().reserve(BestStart, BestFinish,
                                                  HeftOwner);
    CWS_CHECK(Reserved, "HEFT placement overlaps");
    Tick Inbound = 0;
    for (size_t EdgeIdx : J.inEdges(TaskId)) {
      const DataEdge &E = J.edge(EdgeIdx);
      const Placement *Src = Result.Dist.find(E.Src);
      Inbound += Net.transferTicks(E.BaseTransfer, Src->NodeId, BestNode);
    }
    Result.Dist.add({TaskId, BestNode, BestStart, BestFinish,
                     Cost.nodeCost(BestNode, Dur) +
                         Cost.transferCost(Inbound)});
  }
  Result.Makespan = Result.Dist.makespan();
  Result.MeetsDeadline = Result.Makespan <= J.deadline();
  return Result;
}
