//===-- metrics/QoS.cpp - QoS factor aggregation --------------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "metrics/QoS.h"

#include <algorithm>

using namespace cws;

VoAggregates cws::summarizeVo(const VoRunResult &Run) {
  VoAggregates A;
  A.Jobs = Run.Jobs.size();
  if (A.Jobs == 0)
    return A;

  size_t Admissible = 0;
  size_t Rejected = 0;
  size_t Switched = 0;
  size_t Reallocated = 0;
  size_t ShiftRecovered = 0;
  size_t TtlSamples = 0;
  for (const auto &St : Run.Jobs) {
    if (St.Admissible)
      ++Admissible;
    if (St.Rejected)
      ++Rejected;
    if (St.Switched)
      ++Switched;
    if (St.Reallocated)
      ++Reallocated;
    if (St.ShiftRecovered) {
      ++ShiftRecovered;
      A.MeanCommitShift += static_cast<double>(St.CommitShift);
    }
    if (St.Admissible && St.TtlClosed) {
      A.MeanTtl += static_cast<double>(St.Ttl);
      ++TtlSamples;
    }
    if (!St.Committed)
      continue;
    ++A.Committed;
    if (St.ExecutionKilled)
      A.ExecutionKilledPercent += 1.0;
    A.MeanCost += St.Cost;
    A.MeanCf += static_cast<double>(St.Cf);
    A.MeanRunTicks += static_cast<double>(St.runTicks());
    A.MeanResponseTicks += static_cast<double>(St.Completion - St.Arrival);
    A.MeanStartDeviation += static_cast<double>(St.startDeviation());
    A.MeanStartDeviationRatio +=
        static_cast<double>(St.startDeviation()) /
        static_cast<double>(std::max<Tick>(1, St.runTicks()));
    A.MeanCollisions += static_cast<double>(St.Collisions);
  }

  auto Pct = [&](size_t N) {
    return 100.0 * static_cast<double>(N) / static_cast<double>(A.Jobs);
  };
  A.AdmissiblePercent = Pct(Admissible);
  A.CommittedPercent = Pct(A.Committed);
  A.RejectedPercent = Pct(Rejected);
  A.SwitchedPercent = Pct(Switched);
  A.ReallocatedPercent = Pct(Reallocated);
  A.ShiftRecoveredPercent = Pct(ShiftRecovered);
  if (ShiftRecovered > 0)
    A.MeanCommitShift /= static_cast<double>(ShiftRecovered);
  if (TtlSamples > 0)
    A.MeanTtl /= static_cast<double>(TtlSamples);
  if (A.Committed > 0) {
    auto N = static_cast<double>(A.Committed);
    A.ExecutionKilledPercent = 100.0 * A.ExecutionKilledPercent / N;
    A.MeanCost /= N;
    A.MeanCf /= N;
    A.MeanRunTicks /= N;
    A.MeanResponseTicks /= N;
    A.MeanStartDeviation /= N;
    A.MeanStartDeviationRatio /= N;
    A.MeanCollisions /= N;
  }
  return A;
}

void cws::publishVoAggregates(const VoAggregates &A, obs::Registry &R) {
  auto Set = [&R](const char *Name, const char *Help, double Value) {
    R.realGauge(Name, Help).set(Value);
  };
  Set("cws_vo_jobs", "compound jobs in the summarized VO run",
      static_cast<double>(A.Jobs));
  Set("cws_vo_committed_jobs", "jobs whose schedule was committed",
      static_cast<double>(A.Committed));
  Set("cws_vo_admissible_percent", "share of admissible jobs",
      A.AdmissiblePercent);
  Set("cws_vo_committed_percent", "share of committed jobs",
      A.CommittedPercent);
  Set("cws_vo_rejected_percent", "share of rejected jobs",
      A.RejectedPercent);
  Set("cws_vo_switched_percent",
      "share of jobs that switched supporting schedules",
      A.SwitchedPercent);
  Set("cws_vo_reallocated_percent", "share of reallocated jobs",
      A.ReallocatedPercent);
  Set("cws_vo_shift_recovered_percent",
      "share of jobs recovered by shifting a stale schedule",
      A.ShiftRecoveredPercent);
  Set("cws_vo_mean_commit_shift", "mean shift over shift-recovered commits",
      A.MeanCommitShift);
  Set("cws_vo_mean_cost", "mean quota cost of committed jobs", A.MeanCost);
  Set("cws_vo_mean_cf", "mean cost-function value of committed jobs",
      A.MeanCf);
  Set("cws_vo_mean_run_ticks", "mean start-to-completion wall ticks",
      A.MeanRunTicks);
  Set("cws_vo_mean_response_ticks", "mean arrival-to-completion wall ticks",
      A.MeanResponseTicks);
  Set("cws_vo_mean_ttl", "mean strategy time-to-live of admissible jobs",
      A.MeanTtl);
  Set("cws_vo_mean_start_deviation",
      "mean |actual - forecast| start deviation", A.MeanStartDeviation);
  Set("cws_vo_mean_start_deviation_ratio",
      "mean start deviation / run time ratio", A.MeanStartDeviationRatio);
  Set("cws_vo_mean_collisions", "mean collisions per committed job",
      A.MeanCollisions);
  Set("cws_vo_execution_killed_percent",
      "share of committed jobs killed at a wall limit",
      A.ExecutionKilledPercent);
}

void cws::publishFlowAggregates(const VoAggregates &A,
                                const std::string &Flow, obs::Registry &R) {
  // Labeled series: the registry stores the full name and the exporter
  // splits the family at '{' for the HELP/TYPE headers. The flow name
  // is user-controlled, so it is escaped per the exposition format.
  std::string Label = "{flow=\"" + obs::escapeLabelValue(Flow) + "\"}";
  auto Set = [&R, &Label](const char *Name, const char *Help,
                          double Value) {
    R.realGauge(std::string(Name) + Label, Help).set(Value);
  };
  Set("cws_flow_jobs", "compound jobs of the flow",
      static_cast<double>(A.Jobs));
  Set("cws_flow_committed_jobs", "committed jobs of the flow",
      static_cast<double>(A.Committed));
  Set("cws_flow_admissible_percent", "share of admissible jobs per flow",
      A.AdmissiblePercent);
  Set("cws_flow_committed_percent", "share of committed jobs per flow",
      A.CommittedPercent);
  Set("cws_flow_rejected_percent", "share of rejected jobs per flow",
      A.RejectedPercent);
  Set("cws_flow_switched_percent",
      "share of jobs that switched supporting schedules per flow",
      A.SwitchedPercent);
  Set("cws_flow_reallocated_percent", "share of reallocated jobs per flow",
      A.ReallocatedPercent);
  Set("cws_flow_shift_recovered_percent",
      "share of jobs recovered by shifting a stale schedule per flow",
      A.ShiftRecoveredPercent);
  Set("cws_flow_mean_commit_shift",
      "mean shift over shift-recovered commits per flow",
      A.MeanCommitShift);
  Set("cws_flow_mean_cost", "mean quota cost of committed jobs per flow",
      A.MeanCost);
  Set("cws_flow_mean_cf",
      "mean cost-function value of committed jobs per flow", A.MeanCf);
  Set("cws_flow_mean_run_ticks",
      "mean start-to-completion wall ticks per flow", A.MeanRunTicks);
  Set("cws_flow_mean_response_ticks",
      "mean arrival-to-completion wall ticks per flow",
      A.MeanResponseTicks);
  Set("cws_flow_mean_ttl",
      "mean strategy time-to-live of admissible jobs per flow", A.MeanTtl);
  Set("cws_flow_mean_start_deviation",
      "mean |actual - forecast| start deviation per flow",
      A.MeanStartDeviation);
  Set("cws_flow_mean_start_deviation_ratio",
      "mean start deviation / run time ratio per flow",
      A.MeanStartDeviationRatio);
  Set("cws_flow_mean_collisions",
      "mean collisions per committed job per flow", A.MeanCollisions);
  Set("cws_flow_execution_killed_percent",
      "share of committed jobs killed at a wall limit per flow",
      A.ExecutionKilledPercent);
}

void cws::publishMultiFlowAggregates(const std::vector<VoRunResult> &Runs,
                                     obs::Registry &R) {
  for (size_t I = 0; I < Runs.size(); ++I) {
    std::string Label = strategyName(Runs[I].Kind);
    // Runs may pit the same strategy type against itself; keep the
    // labels distinct by flow position.
    for (size_t P = 0; P < I; ++P)
      if (Runs[P].Kind == Runs[I].Kind) {
        Label += "#" + std::to_string(I);
        break;
      }
    publishFlowAggregates(summarizeVo(Runs[I]), Label, R);
  }
}
