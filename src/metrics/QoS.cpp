//===-- metrics/QoS.cpp - QoS factor aggregation --------------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "metrics/QoS.h"

#include <algorithm>

using namespace cws;

VoAggregates cws::summarizeVo(const VoRunResult &Run) {
  VoAggregates A;
  A.Jobs = Run.Jobs.size();
  if (A.Jobs == 0)
    return A;

  size_t Admissible = 0;
  size_t Rejected = 0;
  size_t Switched = 0;
  size_t Reallocated = 0;
  size_t ShiftRecovered = 0;
  size_t TtlSamples = 0;
  for (const auto &St : Run.Jobs) {
    if (St.Admissible)
      ++Admissible;
    if (St.Rejected)
      ++Rejected;
    if (St.Switched)
      ++Switched;
    if (St.Reallocated)
      ++Reallocated;
    if (St.ShiftRecovered) {
      ++ShiftRecovered;
      A.MeanCommitShift += static_cast<double>(St.CommitShift);
    }
    if (St.Admissible && St.TtlClosed) {
      A.MeanTtl += static_cast<double>(St.Ttl);
      ++TtlSamples;
    }
    if (!St.Committed)
      continue;
    ++A.Committed;
    if (St.ExecutionKilled)
      A.ExecutionKilledPercent += 1.0;
    A.MeanCost += St.Cost;
    A.MeanCf += static_cast<double>(St.Cf);
    A.MeanRunTicks += static_cast<double>(St.runTicks());
    A.MeanResponseTicks += static_cast<double>(St.Completion - St.Arrival);
    A.MeanStartDeviation += static_cast<double>(St.startDeviation());
    A.MeanStartDeviationRatio +=
        static_cast<double>(St.startDeviation()) /
        static_cast<double>(std::max<Tick>(1, St.runTicks()));
    A.MeanCollisions += static_cast<double>(St.Collisions);
  }

  auto Pct = [&](size_t N) {
    return 100.0 * static_cast<double>(N) / static_cast<double>(A.Jobs);
  };
  A.AdmissiblePercent = Pct(Admissible);
  A.CommittedPercent = Pct(A.Committed);
  A.RejectedPercent = Pct(Rejected);
  A.SwitchedPercent = Pct(Switched);
  A.ReallocatedPercent = Pct(Reallocated);
  A.ShiftRecoveredPercent = Pct(ShiftRecovered);
  if (ShiftRecovered > 0)
    A.MeanCommitShift /= static_cast<double>(ShiftRecovered);
  if (TtlSamples > 0)
    A.MeanTtl /= static_cast<double>(TtlSamples);
  if (A.Committed > 0) {
    auto N = static_cast<double>(A.Committed);
    A.ExecutionKilledPercent = 100.0 * A.ExecutionKilledPercent / N;
    A.MeanCost /= N;
    A.MeanCf /= N;
    A.MeanRunTicks /= N;
    A.MeanResponseTicks /= N;
    A.MeanStartDeviation /= N;
    A.MeanStartDeviationRatio /= N;
    A.MeanCollisions /= N;
  }
  return A;
}
