//===-- metrics/Export.h - CSV export of schedules and stats ----*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CSV renderers for external analysis and plotting: a distribution's
/// placements, a strategy's variant summary, and the per-job QoS
/// records of a virtual-organization run.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_METRICS_EXPORT_H
#define CWS_METRICS_EXPORT_H

#include "core/Distribution.h"
#include "core/Strategy.h"
#include "flow/JobManager.h"
#include "obs/Metrics.h"

#include <string>
#include <vector>

namespace cws {

/// Placements as CSV: task,name,node,start,end,cost.
std::string distributionCsv(const Job &J, const Distribution &D);

/// Variant summary as CSV: variant,level_perf,bias,feasible,start,
/// makespan,econ_cost,cf,collisions.
std::string strategyCsv(const Strategy &S);

/// Per-job VO records as CSV (one row per job).
std::string voStatsCsv(const std::vector<VoJobStats> &Stats);

/// Registry snapshot as CSV: metric,type,series,le,value. Histograms
/// expand into one cumulative `bucket` row per bound plus `sum` and
/// `count` rows, mirroring the Prometheus exposition.
std::string metricsCsv(const obs::Registry &R = obs::Registry::global());

/// Writes \p Text to \p Path; returns false on I/O failure.
bool writeTextFile(const std::string &Path, const std::string &Text);

/// Writes a metrics snapshot of \p R to \p Path: CSV when the path ends
/// in ".csv", Prometheus text exposition otherwise.
bool writeMetricsSnapshot(const std::string &Path,
                          const obs::Registry &R = obs::Registry::global());

} // namespace cws

#endif // CWS_METRICS_EXPORT_H
