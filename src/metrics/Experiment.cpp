//===-- metrics/Experiment.cpp - Figure experiment harness ----------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "metrics/Experiment.h"
#include "flow/BackgroundLoad.h"
#include "flow/Metascheduler.h"
#include "resource/Network.h"
#include "support/Check.h"

#include <algorithm>

using namespace cws;

size_t cws::preloadGrid(Grid &Env, Tick Horizon, double Lo, double Hi,
                        Tick DurLo, Tick DurHi, Prng &Rng) {
  CWS_CHECK(Horizon > 0, "pre-load horizon must be positive");
  CWS_CHECK(0.0 <= Lo && Lo <= Hi && Hi < 1.0, "invalid pre-load range");
  CWS_CHECK(DurLo >= 1 && DurLo <= DurHi, "invalid pre-load durations");
  size_t Placed = 0;
  for (auto &N : Env.nodes()) {
    double Target = Rng.uniformReal(Lo, Hi);
    Timeline &Line = N.timeline();
    // Drop random intervals until the busy fraction reaches the target;
    // bounded attempts keep degenerate configurations terminating.
    for (int Attempt = 0; Attempt < 1000; ++Attempt) {
      if (Line.utilization(0, Horizon) >= Target)
        break;
      Tick Dur = Rng.uniformInt(DurLo, DurHi);
      Tick Start = Rng.uniformInt(0, std::max<Tick>(0, Horizon - Dur));
      if (Line.reserve(Start, Start + Dur, BackgroundOwner))
        ++Placed;
    }
  }
  return Placed;
}

std::vector<Fig3Row> cws::runFig3(const Fig3Config &Config) {
  std::vector<Fig3Row> Rows;
  Rows.reserve(Config.Kinds.size());
  for (StrategyKind Kind : Config.Kinds) {
    Fig3Row Row;
    Row.Kind = Kind;
    Rows.push_back(Row);
  }

  Prng Root(Config.Seed);
  Network Net;
  JobGenerator Gen(Config.Workload, Root.next());
  Prng EnvRng = Root.fork();
  Prng LoadRng = Root.fork();

  for (size_t I = 0; I < Config.JobCount; ++I) {
    Job J = Gen.next(0);
    // A fresh random environment per experiment, pre-loaded with
    // independent jobs the application-level scheduler must dodge.
    Grid Env = Grid::makeRandom(Config.GridCfg, EnvRng);
    preloadGrid(Env, J.deadline(), Config.PreloadLo, Config.PreloadHi,
                Config.PreloadDurLo, Config.PreloadDurHi, LoadRng);

    OwnerId Owner = JobOwnerBase + J.id();
    for (auto &Row : Rows) {
      StrategyConfig SC = Config.StrategyCfg;
      SC.Kind = Row.Kind;
      Strategy S = Strategy::build(J, Env, Net, SC, Owner, 0);

      ++Row.Jobs;
      if (S.admissible())
        ++Row.Admissible;
      Row.MeanVariants += static_cast<double>(S.variants().size());
      Row.MeanFeasibleVariants += static_cast<double>(S.feasibleCount());

      for (const auto &V : S.variants()) {
        CollisionSplit Intra = splitCollisions(V.Result.Collisions, Env,
                                               Owner);
        CollisionSplit &Target = V.Bias == OptimizationBias::Cost
                                     ? Row.IntraCost
                                     : Row.IntraTime;
        Target.Fast += Intra.Fast;
        Target.Slow += Intra.Slow;
        CollisionSplit Everything =
            splitCollisions(V.Result.Collisions, Env, 0);
        Row.Background.Fast += Everything.Fast - Intra.Fast;
        Row.Background.Slow += Everything.Slow - Intra.Slow;
      }
    }
  }

  for (auto &Row : Rows) {
    if (Row.Jobs == 0)
      continue;
    Row.MeanVariants /= static_cast<double>(Row.Jobs);
    Row.MeanFeasibleVariants /= static_cast<double>(Row.Jobs);
  }
  return Rows;
}

VoConfig cws::makeFig4VoConfig() {
  VoConfig Vo;
  Vo.Workload.DeadlineSlack = 2.4;
  // The looser deadline tolerates larger coarse-grain macro-tasks.
  Vo.Strategy.CoarsenMaxRef = 18;
  Vo.Background.MeanGapFast = 30;
  Vo.Background.MeanGapMedium = 48;
  Vo.Background.MeanGapSlow = 70;
  Vo.NegotiationLo = 2;
  Vo.NegotiationHi = 10;
  return Vo;
}

std::vector<Fig4Row> cws::runFig4(const Fig4Config &Config) {
  std::vector<Fig4Row> Rows;
  Rows.reserve(Config.Kinds.size());
  for (StrategyKind Kind : Config.Kinds) {
    VoRunResult Run = runVirtualOrganization(Config.Vo, Kind, Config.Seed);
    Fig4Row Row;
    Row.Kind = Kind;
    Row.Agg = summarizeVo(Run);
    Row.LoadFast = Run.JobLoadPercent[static_cast<size_t>(PerfGroup::Fast)];
    Row.LoadMedium =
        Run.JobLoadPercent[static_cast<size_t>(PerfGroup::Medium)];
    Row.LoadSlow = Run.JobLoadPercent[static_cast<size_t>(PerfGroup::Slow)];
    Rows.push_back(Row);
  }
  return Rows;
}
