//===-- metrics/QoS.h - QoS factor aggregation ------------------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Aggregation of the paper's QoS factors over one virtual-organization
/// run: job completion cost, task execution time, scheduling forecast
/// errors (start-time deviation) and strategy time-to-live.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_METRICS_QOS_H
#define CWS_METRICS_QOS_H

#include "flow/VirtualOrganization.h"
#include "obs/Metrics.h"

#include <cstddef>

namespace cws {

/// Mean QoS factors of one run.
struct VoAggregates {
  size_t Jobs = 0;
  size_t Committed = 0;
  double AdmissiblePercent = 0.0;
  double CommittedPercent = 0.0;
  double RejectedPercent = 0.0;
  double SwitchedPercent = 0.0;
  double ReallocatedPercent = 0.0;
  /// Share of jobs recovered by shifting a stale supporting schedule.
  double ShiftRecoveredPercent = 0.0;
  /// Mean shift (ticks) over shift-recovered commits.
  double MeanCommitShift = 0.0;
  /// Mean quota cost of committed jobs.
  double MeanCost = 0.0;
  /// Mean cost-function value CF of committed jobs (the paper's "job
  /// completion cost").
  double MeanCf = 0.0;
  /// Mean wall time from actual start to completion (the paper's "task
  /// execution time" factor).
  double MeanRunTicks = 0.0;
  /// Mean wall time from arrival to completion.
  double MeanResponseTicks = 0.0;
  /// Mean strategy time-to-live (admissible jobs).
  double MeanTtl = 0.0;
  /// Mean |actual - forecast| start deviation over committed jobs.
  double MeanStartDeviation = 0.0;
  /// Mean start deviation / run time (Fig. 4c's ratio).
  double MeanStartDeviationRatio = 0.0;
  /// Mean collisions per job during strategy construction.
  double MeanCollisions = 0.0;
  /// Share of committed jobs killed at a wall limit (only when the run
  /// executed schedules under runtime deviations).
  double ExecutionKilledPercent = 0.0;
};

/// Computes the aggregates of one run.
VoAggregates summarizeVo(const VoRunResult &Run);

/// Publishes \p A into \p R as `cws_vo_*` real gauges, so one
/// `--metrics` snapshot carries the engine internals (scheduler
/// counters, build latencies) and the QoS results of the same run
/// side by side.
void publishVoAggregates(const VoAggregates &A,
                         obs::Registry &R = obs::Registry::global());

/// Publishes \p A as one flow's labeled series: every `cws_vo_<x>`
/// metric becomes a `cws_flow_<x>{flow="<Flow>"}` gauge. \p Flow is
/// the flow's label (a strategy name like "S1", or any caller-chosen
/// tag); '"', '\' and newlines are escaped per the exposition format.
void publishFlowAggregates(const VoAggregates &A, const std::string &Flow,
                           obs::Registry &R = obs::Registry::global());

/// Summarizes and publishes every flow of a multi-flow run under its
/// strategy-type label (the per-flow QoS breakdown of the ROADMAP).
void publishMultiFlowAggregates(const std::vector<VoRunResult> &Runs,
                                obs::Registry &R = obs::Registry::global());

} // namespace cws

#endif // CWS_METRICS_QOS_H
