//===-- metrics/Experiment.h - Figure experiment harness --------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared harness behind the figure benches. Fig. 3 is the static
/// application-level study (strategies for thousands of random jobs,
/// each against a freshly pre-loaded random environment); Fig. 4 is the
/// dynamic coordinated two-level study (virtual-organization runs per
/// strategy type).
///
//===----------------------------------------------------------------------===//

#ifndef CWS_METRICS_EXPERIMENT_H
#define CWS_METRICS_EXPERIMENT_H

#include "core/Collision.h"
#include "core/Strategy.h"
#include "flow/VirtualOrganization.h"
#include "job/Generator.h"
#include "metrics/QoS.h"

#include <cstdint>
#include <vector>

namespace cws {

/// Parameters of the Fig. 3 application-level study.
struct Fig3Config {
  size_t JobCount = 12000;
  GridConfig GridCfg;
  WorkloadConfig Workload;
  StrategyConfig StrategyCfg;
  /// Per-node busy fraction of the pre-existing independent load,
  /// uniform in [PreloadLo, PreloadHi].
  double PreloadLo = 0.35;
  double PreloadHi = 0.75;
  /// Pre-load busy interval length, uniform.
  Tick PreloadDurLo = 2;
  Tick PreloadDurHi = 10;
  std::vector<StrategyKind> Kinds = {StrategyKind::S1, StrategyKind::S2,
                                     StrategyKind::S3};
  uint64_t Seed = 2009;
};

/// Accumulated Fig. 3 results for one strategy type.
struct Fig3Row {
  StrategyKind Kind = StrategyKind::S1;
  size_t Jobs = 0;
  size_t Admissible = 0;
  /// Fig. 3a: percentage of experiments with admissible schedules.
  double admissiblePercent() const {
    return Jobs ? 100.0 * static_cast<double>(Admissible) /
                      static_cast<double>(Jobs)
                : 0.0;
  }
  /// Fig. 3b: collisions between tasks of different critical works,
  /// split by contended node group. IntraCost covers the cost-optimized
  /// variants (the paper's CF-driven method); IntraTime the
  /// time-optimized ones.
  CollisionSplit IntraCost;
  CollisionSplit IntraTime;
  /// Collisions against pre-existing independent load.
  CollisionSplit Background;
  double MeanVariants = 0.0;
  double MeanFeasibleVariants = 0.0;
};

/// Runs the Fig. 3 study; one row per configured strategy type.
std::vector<Fig3Row> runFig3(const Fig3Config &Config);

/// Pre-loads every node of \p Env with random background reservations
/// until the busy fraction over [0, Horizon) reaches a per-node target
/// drawn from [Lo, Hi]. Returns placed reservation count.
size_t preloadGrid(Grid &Env, Tick Horizon, double Lo, double Hi, Tick DurLo,
                   Tick DurHi, Prng &Rng);

/// The virtual-organization configuration the Fig. 4 study defaults to:
/// a moderately looser deadline than the Fig. 3 stress test (committed
/// jobs must actually run for cost/time/TTL factors to be measurable)
/// and a calmer background flow.
VoConfig makeFig4VoConfig();

/// Parameters of the Fig. 4 coordinated two-level study.
struct Fig4Config {
  VoConfig Vo = makeFig4VoConfig();
  std::vector<StrategyKind> Kinds = {StrategyKind::S1, StrategyKind::S2,
                                     StrategyKind::S3, StrategyKind::MS1};
  uint64_t Seed = 2009;
};

/// One strategy type's dynamic results.
struct Fig4Row {
  StrategyKind Kind = StrategyKind::S1;
  VoAggregates Agg;
  double LoadFast = 0.0;
  double LoadMedium = 0.0;
  double LoadSlow = 0.0;
};

/// Runs the Fig. 4 study; one row per configured strategy type (all
/// rows share the same seed, hence the same environment and job flow).
std::vector<Fig4Row> runFig4(const Fig4Config &Config);

} // namespace cws

#endif // CWS_METRICS_EXPERIMENT_H
