//===-- metrics/Export.cpp - CSV export of schedules and stats ------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "metrics/Export.h"
#include "job/Job.h"
#include "obs/Journal.h"
#include "obs/Trace.h"

#include <cstdio>

using namespace cws;

std::string cws::distributionCsv(const Job &J, const Distribution &D) {
  std::string Out = "task,name,node,start,end,cost\n";
  char Buf[160];
  for (const auto &P : D.placements()) {
    std::snprintf(Buf, sizeof(Buf), "%u,%s,%u,%lld,%lld,%.3f\n", P.TaskId,
                  J.task(P.TaskId).Name.c_str(), P.NodeId,
                  static_cast<long long>(P.Start),
                  static_cast<long long>(P.End), P.EconomicCost);
    Out += Buf;
  }
  return Out;
}

std::string cws::strategyCsv(const Strategy &S) {
  std::string Out =
      "variant,level_perf,bias,feasible,start,makespan,econ_cost,cf,"
      "collisions\n";
  char Buf[200];
  size_t Idx = 0;
  for (const auto &V : S.variants()) {
    const Distribution &D = V.Result.Dist;
    if (V.feasible())
      std::snprintf(Buf, sizeof(Buf), "%zu,%.3f,%s,1,%lld,%lld,%.3f,%lld,%zu\n",
                    Idx, V.LevelPerf, optimizationBiasName(V.Bias),
                    static_cast<long long>(D.startTime()),
                    static_cast<long long>(D.makespan()), D.economicCost(),
                    static_cast<long long>(
                        D.costFunction(S.scheduledJob())),
                    V.Result.Collisions.size());
    else
      std::snprintf(Buf, sizeof(Buf), "%zu,%.3f,%s,0,,,,,%zu\n", Idx,
                    V.LevelPerf, optimizationBiasName(V.Bias),
                    V.Result.Collisions.size());
    Out += Buf;
    ++Idx;
  }
  return Out;
}

std::string cws::voStatsCsv(const std::vector<VoJobStats> &Stats) {
  std::string Out =
      "job,arrival,deadline,admissible,committed,rejected,reallocated,"
      "switched,forecast_start,actual_start,completion,cost,cf,ttl,"
      "ttl_closed,collisions\n";
  char Buf[256];
  for (const auto &St : Stats) {
    std::snprintf(
        Buf, sizeof(Buf),
        "%u,%lld,%lld,%d,%d,%d,%d,%d,%lld,%lld,%lld,%.3f,%lld,%lld,%d,%zu\n",
        St.JobId, static_cast<long long>(St.Arrival),
        static_cast<long long>(St.Deadline), St.Admissible, St.Committed,
        St.Rejected, St.Reallocated, St.Switched,
        static_cast<long long>(St.ForecastStart),
        static_cast<long long>(St.ActualStart),
        static_cast<long long>(St.Completion), St.Cost,
        static_cast<long long>(St.Cf), static_cast<long long>(St.Ttl),
        St.TtlClosed, St.Collisions);
    Out += Buf;
  }
  return Out;
}

std::string cws::metricsCsv(const obs::Registry &R) {
  std::string Out = "metric,type,series,le,value\n";
  char Buf[64];
  for (const obs::Registry::Sample &S : R.samples()) {
    std::snprintf(Buf, sizeof(Buf), ",%.17g\n", S.Value);
    Out += S.Name + "," + S.Type + "," + S.Series + "," + S.Le + Buf;
  }
  return Out;
}

bool cws::writeTextFile(const std::string &Path, const std::string &Text) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), F);
  bool Ok = Written == Text.size();
  Ok = std::fclose(F) == 0 && Ok;
  return Ok;
}

bool cws::writeMetricsSnapshot(const std::string &Path,
                               const obs::Registry &R) {
  // Snapshots of the global registry also carry the tracer's and
  // journal's loss counters, so trace/journal incompleteness is visible
  // in the same export.
  if (&R == &obs::Registry::global()) {
    obs::publishTraceStats(obs::Registry::global());
    obs::publishJournalStats(obs::Registry::global());
  }
  bool Csv = Path.size() >= 4 && Path.compare(Path.size() - 4, 4, ".csv") == 0;
  return writeTextFile(Path, Csv ? metricsCsv(R) : R.prometheusText());
}
