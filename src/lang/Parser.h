//===-- lang/Parser.h - Job description language parser ---------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parser for the CWS job description language. Grammar (newlines and
/// commas are insignificant; `#` comments to end of line):
///
/// \code
///   file     := stmt*
///   stmt     := jobDecl | taskDecl | edgeDecl | nodeDecl
///   jobDecl  := "job" (STRING | IDENT)? attr*
///   taskDecl := "task" IDENT attr*
///   edgeDecl := "edge" IDENT "->" IDENT attr*
///   nodeDecl := "node" attr*
///   attr     := IDENT NUMBER
/// \endcode
///
/// Job attributes: `deadline`, `release`, `id`. Task attributes: `ref`
/// (required, reference execution ticks), `vol` (computation volume,
/// default 10 x ref). Edge attribute: `transfer` (default 1). Node
/// attributes: `perf` (required), `price` (default from the standard
/// price model). Example:
///
/// \code
///   job "wf" deadline 30
///   task prepare  ref 2 vol 20
///   task simulate ref 4
///   edge prepare -> simulate transfer 1
///   node perf 1.0
///   node perf 0.33 price 1.1
/// \endcode
///
/// Errors are collected as diagnostics with source locations; the
/// parser recovers at statement boundaries so one description yields
/// every error at once.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_LANG_PARSER_H
#define CWS_LANG_PARSER_H

#include "job/Job.h"
#include "resource/Grid.h"

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace cws {

/// One parse error with its 1-based source location.
struct Diagnostic {
  size_t Line;
  size_t Col;
  std::string Message;
};

/// Outcome of parsing a description.
struct ParseResult {
  Job TheJob;
  /// Nodes declared in the description (may be empty: environments are
  /// often provided programmatically).
  Grid Env;
  bool HasJob = false;
  bool HasEnv = false;
  std::vector<Diagnostic> Errors;

  bool ok() const { return Errors.empty(); }
};

/// Parses \p Text; never aborts on user input (all problems become
/// diagnostics).
ParseResult parseJobDescription(std::string_view Text);

/// Renders \p J back into the description language; the output parses
/// to an equivalent job (round-trip property).
std::string printJobDescription(const Job &J);

/// Renders \p Diags one per line as "line:col: message".
std::string formatDiagnostics(const std::vector<Diagnostic> &Diags);

} // namespace cws

#endif // CWS_LANG_PARSER_H
