//===-- lang/Lexer.cpp - Job description language lexer -------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"
#include "support/Check.h"

#include <cctype>

using namespace cws;

const char *cws::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::Number:
    return "number";
  case TokenKind::String:
    return "string";
  case TokenKind::Arrow:
    return "'->'";
  case TokenKind::EndOfInput:
    return "end of input";
  case TokenKind::Error:
    return "invalid token";
  }
  CWS_UNREACHABLE("unknown token kind");
}

Lexer::Lexer(std::string_view Input) : Input(Input) {}

static bool isIdentStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_';
}

static bool isIdentBody(char C) {
  // '+' appears in the generated names of coarse-grain macro-tasks.
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
         C == '-' || C == '.' || C == '+';
}

void Lexer::skipTrivia() {
  while (Pos < Input.size()) {
    char C = Input[Pos];
    if (C == '\n') {
      ++Pos;
      ++Line;
      Col = 1;
      continue;
    }
    if (C == ' ' || C == '\t' || C == '\r' || C == ',' || C == ';') {
      ++Pos;
      ++Col;
      continue;
    }
    if (C == '#') {
      while (Pos < Input.size() && Input[Pos] != '\n') {
        ++Pos;
        ++Col;
      }
      continue;
    }
    return;
  }
}

Token Lexer::lexToken() {
  skipTrivia();
  Token T;
  T.Line = Line;
  T.Col = Col;
  if (Pos >= Input.size()) {
    T.Kind = TokenKind::EndOfInput;
    return T;
  }

  char C = Input[Pos];

  if (C == '-' && Pos + 1 < Input.size() && Input[Pos + 1] == '>') {
    Pos += 2;
    Col += 2;
    T.Kind = TokenKind::Arrow;
    T.Text = "->";
    return T;
  }

  if (std::isdigit(static_cast<unsigned char>(C)) ||
      ((C == '-' || C == '+') && Pos + 1 < Input.size() &&
       std::isdigit(static_cast<unsigned char>(Input[Pos + 1])))) {
    size_t Start = Pos;
    if (C == '-' || C == '+') {
      ++Pos;
      ++Col;
    }
    bool SeenDot = false;
    while (Pos < Input.size() &&
           (std::isdigit(static_cast<unsigned char>(Input[Pos])) ||
            (Input[Pos] == '.' && !SeenDot))) {
      SeenDot |= Input[Pos] == '.';
      ++Pos;
      ++Col;
    }
    T.Kind = TokenKind::Number;
    T.Text = std::string(Input.substr(Start, Pos - Start));
    return T;
  }

  if (isIdentStart(C)) {
    size_t Start = Pos;
    while (Pos < Input.size() && isIdentBody(Input[Pos])) {
      // "a->b" must lex as identifier, arrow, identifier.
      if (Input[Pos] == '-' && Pos + 1 < Input.size() &&
          Input[Pos + 1] == '>')
        break;
      ++Pos;
      ++Col;
    }
    T.Kind = TokenKind::Identifier;
    T.Text = std::string(Input.substr(Start, Pos - Start));
    return T;
  }

  if (C == '"') {
    ++Pos;
    ++Col;
    size_t Start = Pos;
    while (Pos < Input.size() && Input[Pos] != '"' && Input[Pos] != '\n') {
      ++Pos;
      ++Col;
    }
    if (Pos >= Input.size() || Input[Pos] != '"') {
      T.Kind = TokenKind::Error;
      T.Text = "unterminated string";
      return T;
    }
    T.Kind = TokenKind::String;
    T.Text = std::string(Input.substr(Start, Pos - Start));
    ++Pos; // Closing quote.
    ++Col;
    return T;
  }

  T.Kind = TokenKind::Error;
  T.Text = std::string(1, C);
  ++Pos;
  ++Col;
  return T;
}

Token Lexer::next() {
  if (HasLookahead) {
    HasLookahead = false;
    return Lookahead;
  }
  return lexToken();
}

const Token &Lexer::peek() {
  if (!HasLookahead) {
    Lookahead = lexToken();
    HasLookahead = true;
  }
  return Lookahead;
}
