//===-- lang/Lexer.h - Job description language lexer -----------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lexer for the CWS job description language — the textual
/// resource-query format playing the role the paper assigns to JDL /
/// ClassAds: users describe compound jobs (tasks, data dependencies,
/// QoS attributes) and optionally environments declaratively.
///
/// Token kinds: identifiers, numbers (integer or real, optional sign),
/// quoted strings, the arrow `->`, and end-of-input. `#` starts a
/// comment running to end of line. Newlines are insignificant.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_LANG_LEXER_H
#define CWS_LANG_LEXER_H

#include <cstddef>
#include <string>
#include <string_view>

namespace cws {

/// Kinds of tokens in the job description language.
enum class TokenKind {
  Identifier,
  Number,
  String,
  Arrow,
  EndOfInput,
  Error,
};

/// Display name of a token kind ("identifier", "number", ...).
const char *tokenKindName(TokenKind Kind);

/// One lexed token with its source location (1-based).
struct Token {
  TokenKind Kind = TokenKind::EndOfInput;
  /// The token's text; for String tokens, without the quotes.
  std::string Text;
  size_t Line = 1;
  size_t Col = 1;

  bool is(TokenKind K) const { return Kind == K; }

  /// True for an Identifier with exactly this text.
  bool isKeyword(std::string_view Word) const {
    return Kind == TokenKind::Identifier && Text == Word;
  }
};

/// Single-pass lexer over a description buffer.
class Lexer {
public:
  explicit Lexer(std::string_view Input);

  /// Lexes and consumes the next token.
  Token next();

  /// Lexes the next token without consuming it.
  const Token &peek();

private:
  void skipTrivia();
  Token lexToken();

  std::string_view Input;
  size_t Pos = 0;
  size_t Line = 1;
  size_t Col = 1;
  Token Lookahead;
  bool HasLookahead = false;
};

} // namespace cws

#endif // CWS_LANG_LEXER_H
