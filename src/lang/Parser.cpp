//===-- lang/Parser.cpp - Job description language parser -----------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "lang/Lexer.h"
#include "support/Check.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>

using namespace cws;

namespace {

bool isStatementKeyword(const Token &T) {
  return T.isKeyword("job") || T.isKeyword("task") || T.isKeyword("edge") ||
         T.isKeyword("node") || T.isKeyword("busy");
}

/// Parser state: intermediate declarations are collected first so task
/// and edge order in the source does not matter.
class Parser {
public:
  explicit Parser(std::string_view Text) : Lex(Text) {}

  ParseResult run();

private:
  struct TaskDecl {
    std::string Name;
    Tick Ref = 0;
    double Vol = -1.0; // -1: defaulted to 10 * ref.
    size_t Line, Col;
  };
  struct EdgeDecl {
    std::string Src;
    std::string Dst;
    Tick Transfer = 1;
    size_t Line, Col;
  };
  struct NodeDecl {
    double Perf = 0.0;
    double Price = -1.0; // -1: standard price model.
    size_t Line, Col;
  };
  struct BusyDecl {
    size_t NodeIdx = 0;
    Tick Begin = 0;
    Tick End = 0;
    size_t Line, Col;
  };

  void error(const Token &At, std::string Message) {
    Result.Errors.push_back({At.Line, At.Col, std::move(Message)});
  }

  /// Skips tokens until the next statement keyword (error recovery).
  void synchronize() {
    while (!Lex.peek().is(TokenKind::EndOfInput) &&
           !isStatementKeyword(Lex.peek()))
      Lex.next();
  }

  /// Parses `IDENT NUMBER` attribute pairs until the next statement
  /// keyword; calls \p Apply(name, value, token) per pair. Returns
  /// false after reporting an error.
  template <typename Fn> bool parseAttrs(Fn Apply) {
    while (Lex.peek().is(TokenKind::Identifier) &&
           !isStatementKeyword(Lex.peek())) {
      Token Name = Lex.next();
      Token Value = Lex.next();
      if (!Value.is(TokenKind::Number)) {
        error(Value, "expected number after attribute '" + Name.Text +
                         "', got " + tokenKindName(Value.Kind));
        return false;
      }
      if (!Apply(Name.Text, std::strtod(Value.Text.c_str(), nullptr), Name))
        return false;
    }
    return true;
  }

  void parseJob(const Token &Kw);
  void parseTask(const Token &Kw);
  void parseEdge(const Token &Kw);
  void parseNode(const Token &Kw);
  void parseBusy(const Token &Kw);
  void finalize();

  Lexer Lex;
  ParseResult Result;
  std::string JobName;
  Tick Deadline = TickMax;
  Tick Release = 0;
  unsigned JobId = 0;
  bool SawJobDecl = false;
  std::vector<TaskDecl> Tasks;
  std::vector<EdgeDecl> Edges;
  std::vector<NodeDecl> Nodes;
  std::vector<BusyDecl> BusySlots;
};

void Parser::parseJob(const Token &Kw) {
  if (SawJobDecl)
    error(Kw, "duplicate 'job' declaration");
  SawJobDecl = true;
  if (Lex.peek().is(TokenKind::String) ||
      (Lex.peek().is(TokenKind::Identifier) &&
       !isStatementKeyword(Lex.peek()))) {
    // Optional name... but a bare identifier could also be an attribute
    // name; treat it as a name only when not followed by a number.
    if (Lex.peek().is(TokenKind::String)) {
      JobName = Lex.next().Text;
    }
  }
  parseAttrs([&](const std::string &Name, double Value, const Token &At) {
    if (Name == "deadline") {
      Deadline = static_cast<Tick>(Value);
      if (Deadline <= 0) {
        error(At, "deadline must be positive");
        return false;
      }
      return true;
    }
    if (Name == "release") {
      Release = static_cast<Tick>(Value);
      if (Release < 0) {
        error(At, "release must be non-negative");
        return false;
      }
      return true;
    }
    if (Name == "id") {
      JobId = static_cast<unsigned>(Value);
      return true;
    }
    error(At, "unknown job attribute '" + Name + "'");
    return false;
  });
}

void Parser::parseTask(const Token &Kw) {
  Token Name = Lex.next();
  if (!Name.is(TokenKind::Identifier)) {
    error(Name, "expected task name after 'task'");
    synchronize();
    return;
  }
  TaskDecl Decl;
  Decl.Name = Name.Text;
  Decl.Line = Kw.Line;
  Decl.Col = Kw.Col;
  bool Ok =
      parseAttrs([&](const std::string &Attr, double Value, const Token &At) {
        if (Attr == "ref") {
          Decl.Ref = static_cast<Tick>(Value);
          if (Decl.Ref <= 0) {
            error(At, "task 'ref' must be a positive integer");
            return false;
          }
          return true;
        }
        if (Attr == "vol") {
          Decl.Vol = Value;
          if (Decl.Vol < 0) {
            error(At, "task 'vol' must be non-negative");
            return false;
          }
          return true;
        }
        error(At, "unknown task attribute '" + Attr + "'");
        return false;
      });
  if (!Ok) {
    synchronize();
    return;
  }
  if (Decl.Ref == 0) {
    error(Name, "task '" + Decl.Name + "' is missing the required 'ref'");
    return;
  }
  Tasks.push_back(std::move(Decl));
}

void Parser::parseEdge(const Token &Kw) {
  Token Src = Lex.next();
  if (!Src.is(TokenKind::Identifier)) {
    error(Src, "expected source task name after 'edge'");
    synchronize();
    return;
  }
  Token Arrow = Lex.next();
  if (!Arrow.is(TokenKind::Arrow)) {
    error(Arrow, "expected '->' in edge declaration");
    synchronize();
    return;
  }
  Token Dst = Lex.next();
  if (!Dst.is(TokenKind::Identifier)) {
    error(Dst, "expected destination task name after '->'");
    synchronize();
    return;
  }
  EdgeDecl Decl;
  Decl.Src = Src.Text;
  Decl.Dst = Dst.Text;
  Decl.Line = Kw.Line;
  Decl.Col = Kw.Col;
  bool Ok =
      parseAttrs([&](const std::string &Attr, double Value, const Token &At) {
        if (Attr == "transfer") {
          Decl.Transfer = static_cast<Tick>(Value);
          if (Decl.Transfer < 0) {
            error(At, "edge 'transfer' must be non-negative");
            return false;
          }
          return true;
        }
        error(At, "unknown edge attribute '" + Attr + "'");
        return false;
      });
  if (!Ok) {
    synchronize();
    return;
  }
  Edges.push_back(std::move(Decl));
}

void Parser::parseNode(const Token &Kw) {
  NodeDecl Decl;
  Decl.Line = Kw.Line;
  Decl.Col = Kw.Col;
  bool Ok =
      parseAttrs([&](const std::string &Attr, double Value, const Token &At) {
        if (Attr == "perf") {
          Decl.Perf = Value;
          if (Decl.Perf <= 0.0) {
            error(At, "node 'perf' must be positive");
            return false;
          }
          return true;
        }
        if (Attr == "price") {
          Decl.Price = Value;
          if (Decl.Price < 0.0) {
            error(At, "node 'price' must be non-negative");
            return false;
          }
          return true;
        }
        error(At, "unknown node attribute '" + Attr + "'");
        return false;
      });
  if (!Ok) {
    synchronize();
    return;
  }
  if (Decl.Perf <= 0.0) {
    error(Kw, "node declaration is missing the required 'perf'");
    return;
  }
  Nodes.push_back(Decl);
}

void Parser::parseBusy(const Token &Kw) {
  // busy NODE BEGIN END — a pre-existing reservation of the scenario.
  Tick Values[3];
  for (Tick &V : Values) {
    Token T = Lex.next();
    if (!T.is(TokenKind::Number)) {
      error(T, "expected number in 'busy <node> <begin> <end>'");
      synchronize();
      return;
    }
    V = static_cast<Tick>(std::strtod(T.Text.c_str(), nullptr));
  }
  BusyDecl Decl;
  Decl.NodeIdx = static_cast<size_t>(Values[0]);
  Decl.Begin = Values[1];
  Decl.End = Values[2];
  Decl.Line = Kw.Line;
  Decl.Col = Kw.Col;
  if (Values[0] < 0 || Decl.Begin < 0 || Decl.Begin >= Decl.End) {
    error(Kw, "'busy' needs node >= 0 and 0 <= begin < end");
    return;
  }
  BusySlots.push_back(Decl);
}

void Parser::finalize() {
  std::map<std::string, unsigned> TaskIds;
  Result.TheJob.setId(JobId);
  for (const auto &Decl : Tasks) {
    if (TaskIds.count(Decl.Name)) {
      Result.Errors.push_back(
          {Decl.Line, Decl.Col, "duplicate task '" + Decl.Name + "'"});
      continue;
    }
    double Vol = Decl.Vol >= 0.0 ? Decl.Vol
                                 : 10.0 * static_cast<double>(Decl.Ref);
    TaskIds[Decl.Name] = Result.TheJob.addTask(Decl.Name, Decl.Ref, Vol);
  }
  for (const auto &Decl : Edges) {
    auto SrcIt = TaskIds.find(Decl.Src);
    auto DstIt = TaskIds.find(Decl.Dst);
    if (SrcIt == TaskIds.end()) {
      Result.Errors.push_back(
          {Decl.Line, Decl.Col, "edge references unknown task '" +
                                    Decl.Src + "'"});
      continue;
    }
    if (DstIt == TaskIds.end()) {
      Result.Errors.push_back(
          {Decl.Line, Decl.Col, "edge references unknown task '" +
                                    Decl.Dst + "'"});
      continue;
    }
    if (SrcIt->second == DstIt->second) {
      Result.Errors.push_back(
          {Decl.Line, Decl.Col, "self-dependency on task '" + Decl.Src +
                                    "'"});
      continue;
    }
    Result.TheJob.addEdge(SrcIt->second, DstIt->second, Decl.Transfer);
  }
  Result.TheJob.setRelease(Release);
  Result.TheJob.setDeadline(Deadline);
  if (Deadline <= Release && SawJobDecl)
    Result.Errors.push_back({1, 1, "deadline must be after release"});
  if (!Result.TheJob.isAcyclic())
    Result.Errors.push_back({1, 1, "the task graph has a cycle"});
  Result.HasJob = SawJobDecl || !Tasks.empty();

  for (const auto &Decl : Nodes) {
    if (Decl.Price >= 0.0)
      Result.Env.addNodePriced(Decl.Perf, Decl.Price);
    else
      Result.Env.addNode(Decl.Perf);
  }
  Result.HasEnv = !Nodes.empty();
  for (const auto &Decl : BusySlots) {
    if (Decl.NodeIdx >= Result.Env.size()) {
      Result.Errors.push_back(
          {Decl.Line, Decl.Col,
           "'busy' references node " + std::to_string(Decl.NodeIdx) +
               " but only " + std::to_string(Result.Env.size()) +
               " nodes are declared"});
      continue;
    }
    // Owner 1 marks pre-existing independent load (BackgroundOwner).
    if (!Result.Env.node(static_cast<unsigned>(Decl.NodeIdx))
             .timeline()
             .reserve(Decl.Begin, Decl.End, 1))
      Result.Errors.push_back(
          {Decl.Line, Decl.Col, "'busy' interval overlaps an earlier one"});
  }
}

ParseResult Parser::run() {
  while (true) {
    Token T = Lex.next();
    if (T.is(TokenKind::EndOfInput))
      break;
    if (T.is(TokenKind::Error)) {
      error(T, "invalid character or token '" + T.Text + "'");
      synchronize();
      continue;
    }
    if (T.isKeyword("job")) {
      parseJob(T);
    } else if (T.isKeyword("task")) {
      parseTask(T);
    } else if (T.isKeyword("edge")) {
      parseEdge(T);
    } else if (T.isKeyword("node")) {
      parseNode(T);
    } else if (T.isKeyword("busy")) {
      parseBusy(T);
    } else {
      error(T, "expected 'job', 'task', 'edge', 'node' or 'busy', got '" +
                   T.Text + "'");
      synchronize();
    }
  }
  finalize();
  return std::move(Result);
}

} // namespace

ParseResult cws::parseJobDescription(std::string_view Text) {
  return Parser(Text).run();
}

std::string cws::printJobDescription(const Job &J) {
  std::string Out;
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "job id %u release %lld deadline %lld\n", J.id(),
                static_cast<long long>(J.release()),
                static_cast<long long>(J.deadline()));
  Out += Buf;
  for (const auto &T : J.tasks()) {
    std::snprintf(Buf, sizeof(Buf), "task %s ref %lld vol %g\n",
                  T.Name.c_str(), static_cast<long long>(T.RefTicks),
                  T.Volume);
    Out += Buf;
  }
  for (const auto &E : J.edges()) {
    std::snprintf(Buf, sizeof(Buf), "edge %s -> %s transfer %lld\n",
                  J.task(E.Src).Name.c_str(), J.task(E.Dst).Name.c_str(),
                  static_cast<long long>(E.BaseTransfer));
    Out += Buf;
  }
  return Out;
}

std::string cws::formatDiagnostics(const std::vector<Diagnostic> &Diags) {
  std::string Out;
  for (const auto &D : Diags) {
    Out += std::to_string(D.Line) + ":" + std::to_string(D.Col) + ": " +
           D.Message + "\n";
  }
  return Out;
}
