//===-- flow/Forecast.h - Node load level forecasting -----------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Node load-level forecasting — the Section-5 future-work item
/// ("local processor nodes load level forecasting methods
/// development"). An exponentially weighted moving average of observed
/// per-node utilization; the dispatcher can steer job-flows by forecast
/// instead of by the instantaneous reservation calendar.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_FLOW_FORECAST_H
#define CWS_FLOW_FORECAST_H

#include "flow/Domain.h"
#include "resource/Grid.h"
#include "sim/Time.h"

#include <cstddef>
#include <vector>

namespace cws {

/// EWMA load forecaster over the nodes of one grid.
class LoadForecaster {
public:
  /// \p Alpha is the EWMA smoothing weight of the newest observation.
  explicit LoadForecaster(size_t NodeCount, double Alpha = 0.3);

  /// Feeds the utilization of every node over the window [From, To).
  void observe(const Grid &Env, Tick From, Tick To);

  /// Forecast load level of one node in [0, 1]; 0 before any
  /// observation.
  double forecast(unsigned NodeId) const;

  /// Mean forecast over a domain's nodes.
  double domainForecast(const Domain &D) const;

  size_t observations() const { return Observations; }

private:
  double Alpha;
  std::vector<double> Level;
  size_t Observations = 0;
};

} // namespace cws

#endif // CWS_FLOW_FORECAST_H
