//===-- flow/Execution.h - Executing committed schedules --------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Execution of a committed distribution under runtime deviations: the
/// paper stresses that "actual solving time Ti for a task can be
/// different from user estimation Tij". Tasks may finish early (a
/// successor starts sooner when its data is ready and its node has an
/// unreserved lead-in gap) or overrun their wall time (the local system
/// grants a short extension only into unreserved time — otherwise the
/// task is killed at its limit and the job fails). Reservations are
/// hard boundaries: even the job's own calendar is never violated. The
/// result quantifies schedule reliability and completion-forecast error.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_FLOW_EXECUTION_H
#define CWS_FLOW_EXECUTION_H

#include "core/Distribution.h"
#include "resource/DataPolicy.h"
#include "support/Prng.h"

#include <cstddef>
#include <vector>

namespace cws {

class Grid;
class Job;
class Network;

/// Runtime deviation model: a task's actual duration is its reserved
/// wall time scaled by a uniform factor in [FactorLo, FactorHi]
/// (at least one tick).
struct ExecutionConfig {
  double FactorLo = 0.6;
  double FactorHi = 1.0;
  /// Longest wall-time extension a local system will grant an
  /// overrunning task (0 = kill exactly at the limit).
  Tick MaxExtension = 4;
  /// Data policy the schedule was planned with; execution transfers are
  /// additionally bounded by each edge's planned gap (the plan already
  /// proved the data can arrive within it).
  DataPolicyKind DataKind = DataPolicyKind::RemoteAccess;
  DataPolicyConfig DataConfig;
};

/// Actual run of one task.
struct TaskExecution {
  unsigned TaskId = 0;
  unsigned NodeId = 0;
  Tick Start = 0;
  Tick End = 0;
  bool Overran = false;
  bool Killed = false;
};

/// Outcome of executing one distribution.
struct ExecutionResult {
  std::vector<TaskExecution> Tasks;
  /// When the last task actually finished (0 when killed early).
  Tick Completion = 0;
  bool Succeeded = false;
  bool MetDeadline = false;
  size_t EarlyFinishes = 0;
  size_t Overruns = 0;
  size_t Kills = 0;
  /// Planned completion minus actual completion (positive = early).
  Tick CompletionGain = 0;
};

/// Executes \p D for \p J against the calendars of \p Env (typically
/// with D committed, though execution only *reads* the timelines: it
/// checks lead-in gaps and extension grants, never reserves). \p Rng
/// drives the per-task duration factors.
ExecutionResult executeDistribution(const Job &J, const Distribution &D,
                                    const Grid &Env, Prng &Rng,
                                    const ExecutionConfig &Config = {});

} // namespace cws

#endif // CWS_FLOW_EXECUTION_H
