//===-- flow/Domain.cpp - Processor node domains ---------------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "flow/Domain.h"
#include "support/Check.h"

using namespace cws;

std::vector<Domain> cws::partitionByGroup(const Grid &Env) {
  std::vector<Domain> Domains;
  for (PerfGroup Group :
       {PerfGroup::Fast, PerfGroup::Medium, PerfGroup::Slow}) {
    std::vector<unsigned> Ids = Env.idsInGroup(Group);
    if (Ids.empty())
      continue;
    Domains.push_back({perfGroupName(Group), std::move(Ids)});
  }
  return Domains;
}

std::vector<Domain> cws::partitionStriped(const Grid &Env, size_t Count) {
  CWS_CHECK(Count >= 1, "need at least one domain");
  Count = std::min(Count, Env.size());
  std::vector<Domain> Domains(Count);
  for (size_t I = 0; I < Count; ++I)
    Domains[I].Name = "stripe-" + std::to_string(I);
  std::vector<unsigned> ByPerf = Env.idsByPerf();
  for (size_t I = 0; I < ByPerf.size(); ++I)
    Domains[I % Count].NodeIds.push_back(ByPerf[I]);
  return Domains;
}

double cws::domainBookedLoad(const Grid &Env, const Domain &D, Tick From,
                             Tick To) {
  CWS_CHECK(!D.NodeIds.empty(), "empty domain");
  double Sum = 0.0;
  for (unsigned NodeId : D.NodeIds)
    Sum += Env.node(NodeId).timeline().utilization(From, To);
  return Sum / static_cast<double>(D.NodeIds.size());
}
