//===-- flow/Domain.h - Processor node domains ------------------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Processor node domains of the hierarchical framework (Fig. 1):
/// "processor nodes with the similar architecture, contents,
/// administrating policy are grouped together under the node manager
/// control". The metascheduler distributes job-flows between domains.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_FLOW_DOMAIN_H
#define CWS_FLOW_DOMAIN_H

#include "resource/Grid.h"
#include "sim/Time.h"

#include <cstddef>
#include <string>
#include <vector>

namespace cws {

/// A named subset of the grid under one node manager.
struct Domain {
  std::string Name;
  std::vector<unsigned> NodeIds;

  bool contains(unsigned NodeId) const {
    for (unsigned Id : NodeIds)
      if (Id == NodeId)
        return true;
    return false;
  }
};

/// One domain per performance group (fast / medium / slow); empty
/// groups are omitted.
std::vector<Domain> partitionByGroup(const Grid &Env);

/// \p Count domains of near-equal size, nodes dealt round-robin in
/// descending performance so every domain gets a slice of each tier.
std::vector<Domain> partitionStriped(const Grid &Env, size_t Count);

/// Booked utilization of a domain over [From, To): the mean of its
/// nodes' timeline utilizations. This is the forward-looking load the
/// reservation calendars already know about.
double domainBookedLoad(const Grid &Env, const Domain &D, Tick From, Tick To);

} // namespace cws

#endif // CWS_FLOW_DOMAIN_H
