//===-- flow/Forecast.cpp - Node load level forecasting --------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "flow/Forecast.h"
#include "support/Check.h"

using namespace cws;

LoadForecaster::LoadForecaster(size_t NodeCount, double Alpha)
    : Alpha(Alpha), Level(NodeCount, 0.0) {
  CWS_CHECK(Alpha > 0.0 && Alpha <= 1.0, "alpha must be in (0, 1]");
}

void LoadForecaster::observe(const Grid &Env, Tick From, Tick To) {
  CWS_CHECK(Env.size() == Level.size(), "grid size changed under forecaster");
  CWS_CHECK(From < To, "empty observation window");
  for (const auto &N : Env.nodes()) {
    double U = N.timeline().utilization(From, To);
    double &L = Level[N.id()];
    L = Observations == 0 ? U : Alpha * U + (1.0 - Alpha) * L;
  }
  ++Observations;
}

double LoadForecaster::forecast(unsigned NodeId) const {
  CWS_CHECK(NodeId < Level.size(), "node id out of range");
  return Level[NodeId];
}

double LoadForecaster::domainForecast(const Domain &D) const {
  CWS_CHECK(!D.NodeIds.empty(), "empty domain");
  double Sum = 0.0;
  for (unsigned NodeId : D.NodeIds)
    Sum += forecast(NodeId);
  return Sum / static_cast<double>(D.NodeIds.size());
}
