//===-- flow/VirtualOrganization.cpp - Two-level VO simulation ------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "flow/VirtualOrganization.h"
#include "flow/Economy.h"
#include "flow/Metascheduler.h"
#include "obs/Metrics.h"
#include "obs/TimeSeries.h"
#include "resource/Network.h"
#include "sim/Simulator.h"
#include "support/Check.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <limits>
#include <memory>

using namespace cws;

std::vector<VoRunResult>
cws::runMultiFlowVo(const VoConfig &Config,
                    const std::vector<StrategyKind> &Kinds, uint64_t Seed) {
  CWS_CHECK(!Kinds.empty(), "need at least one flow");
  Prng Root(Seed);
  Grid Env = Grid::makeRandom(Config.GridCfg, Root);
  Network Net;
  Economy Econ;

  // One metascheduler strategy profile, one job manager and one quota
  // account per flow. The env-change log is shared: commits by any
  // flow and background placements both occupy slots that other flows'
  // open strategies may have planned on, and each manager drains the
  // log with its own cursor.
  EnvChangeLog ChangeLog;
  std::vector<std::unique_ptr<Metascheduler>> Metas;
  std::vector<std::unique_ptr<JobManager>> Managers;
  for (StrategyKind Kind : Kinds) {
    StrategyConfig SC = Config.Strategy;
    SC.Kind = Kind;
    unsigned User = Econ.addUser(Config.UserQuota);
    Metas.push_back(std::make_unique<Metascheduler>(Env, Net, Econ, SC));
    Metas.back()->setEnvChangeLog(&ChangeLog);
    Managers.push_back(std::make_unique<JobManager>(
        *Metas.back(), User, static_cast<int>(Managers.size())));
    Managers.back()->setInvalidationMode(Config.Invalidation);
  }

  Simulator Sim;
  if (Config.ExecuteWithDeviations)
    for (auto &M : Managers)
      M->enableExecution(Config.Execution, Root.fork());
  Prng ArrivalRng = Root.fork();
  Prng NegotiationRng = Root.fork();
  Prng BackgroundRng = Root.fork();
  JobGenerator Gen(Config.Workload, Root.next());

  // Pre-generate the flow so the arrival schedule is independent of the
  // strategy types under test.
  std::vector<Job> Flow;
  Flow.reserve(Config.JobCount);
  Tick At = 0;
  for (size_t I = 0; I < Config.JobCount; ++I) {
    At += ArrivalRng.uniformInt(Config.InterarrivalLo,
                                Config.InterarrivalHi);
    Flow.push_back(Gen.next(At));
  }
  Tick LastArrival = Flow.empty() ? 0 : Flow.back().release();

  // Background flows run past the last arrival so every strategy's TTL
  // has a chance to close.
  Tick BackgroundUntil = LastArrival + 600;
  BackgroundLoad Background(Env, Sim, Config.Background, BackgroundRng);
  Background.setEnvChangeLog(&ChangeLog);
  Background.setObserver([&Managers](Tick Now) {
    for (auto &M : Managers)
      M->onEnvironmentChange(Now);
  });
  Background.start(BackgroundUntil);

  // Wire the telemetry sampler to this run's grid and managers. Flow
  // labels mirror publishMultiFlowAggregates (strategy name, with a
  // `#<index>` suffix distinguishing duplicate kinds).
  obs::TimeSeries &Ts = obs::TimeSeries::global();
  const bool Sampling = Ts.enabled();
  if (Sampling) {
    Ts.addDefaultProbes(obs::Registry::global());
    std::vector<std::string> FlowNames;
    for (size_t I = 0; I < Kinds.size(); ++I) {
      std::string Label = strategyName(Kinds[I]);
      for (size_t P = 0; P < I; ++P)
        if (Kinds[P] == Kinds[I]) {
          Label += "#" + std::to_string(I);
          break;
        }
      FlowNames.push_back(std::move(Label));
    }
    Ts.setFlowProvider(std::move(FlowNames), [&Managers] {
      std::vector<obs::FlowSample> Out;
      Out.reserve(Managers.size());
      for (const auto &M : Managers)
        Out.push_back({static_cast<int64_t>(M->queuedCount()),
                       static_cast<int64_t>(M->inFlightCount())});
      return Out;
    });
    const Tick Lookahead = Ts.config().ReservedLookahead;
    Ts.setOccupancyProvider([&Env, Lookahead](Tick Prev, Tick Now) {
      std::vector<obs::NodeOccupancy> Out;
      Out.reserve(Env.size());
      for (const auto &N : Env.nodes()) {
        const Timeline &L = N.timeline();
        obs::NodeOccupancy O;
        if (Now > Prev) {
          double W = static_cast<double>(Now - Prev);
          O.Busy = static_cast<double>(L.busyTicksOf(
                       Prev, Now, JobOwnerBase,
                       std::numeric_limits<OwnerId>::max())) /
                   W;
          O.Background = static_cast<double>(L.busyTicksOf(
                             Prev, Now, BackgroundOwner, BackgroundOwner)) /
                         W;
        }
        O.Reserved = L.utilization(Now, Now + Lookahead);
        Out.push_back(O);
      }
      return Out;
    });
  }

  // Deal jobs to the flows round-robin.
  std::vector<size_t> FlowOf(Config.JobCount, 0);
  for (size_t I = 0; I < Flow.size(); ++I) {
    size_t F = I % Kinds.size();
    FlowOf[Flow[I].id()] = F;
    JobManager &Manager = *Managers[F];
    const Job &J = Flow[I];
    Tick Delay = NegotiationRng.uniformInt(Config.NegotiationLo,
                                           Config.NegotiationHi);
    Sim.at(J.release(), [&Sim, &Manager, J, Delay](Tick Now) {
      if (!Manager.onArrival(J, Now))
        return;
      unsigned JobId = J.id();
      Sim.after(Delay, [&Sim, &Manager, JobId](Tick NegotiationNow) {
        std::optional<Tick> Completion =
            Manager.onNegotiation(JobId, NegotiationNow);
        if (Completion)
          Sim.at(*Completion, [&Manager, JobId](Tick CompletionNow) {
            Manager.onCompletion(JobId, CompletionNow);
          });
      });
    });
  }

  Sim.run();

  if (Sampling) {
    // A final frame, then the per-node occupancy tracks: every surviving
    // reservation becomes a slice in the merged trace, classed by owner.
    Ts.sampleEvent(Sim.now(), "run.end");
    Env.forEachInterval([&Ts](unsigned Node, const Interval &I) {
      const char *Kind = I.Owner >= JobOwnerBase      ? "job"
                         : I.Owner == BackgroundOwner ? "background"
                                                      : "other";
      Ts.addOccupancySlice(Node, I.Begin, I.End, Kind, I.Owner);
    });
    // The providers capture this frame's grid and managers; drop them
    // before those go out of scope. Recorded frames stay exportable.
    Ts.clearProviders();
  }

  std::vector<VoRunResult> Results(Kinds.size());
  Tick Horizon = Sim.now();
  for (size_t F = 0; F < Kinds.size(); ++F) {
    Results[F].Kind = Kinds[F];
    Results[F].BackgroundJobs = Background.placed();
    Results[F].Jobs = Managers[F]->takeStats();
    for (const auto &St : Results[F].Jobs)
      Horizon = std::max(Horizon, St.Completion);
  }
  Horizon = std::max<Tick>(Horizon, 1);

  // Attribute node occupancy per flow via the owner ids.
  size_t GroupNodes[3] = {0, 0, 0};
  std::vector<std::array<Tick, 3>> JobTicks(Kinds.size(), {0, 0, 0});
  Tick BackgroundTicks[3] = {0, 0, 0};
  for (const auto &N : Env.nodes()) {
    auto G = static_cast<size_t>(N.group());
    ++GroupNodes[G];
    for (const auto &I : N.timeline().intervals()) {
      Tick Len =
          std::min(I.End, Horizon) - std::min(I.Begin, Horizon);
      if (I.Owner >= JobOwnerBase) {
        auto JobId = static_cast<size_t>(I.Owner - JobOwnerBase);
        CWS_CHECK(JobId < FlowOf.size(), "unknown job owner");
        JobTicks[FlowOf[JobId]][G] += Len;
      } else if (I.Owner == BackgroundOwner) {
        BackgroundTicks[G] += Len;
      }
    }
  }
  for (size_t F = 0; F < Kinds.size(); ++F) {
    Results[F].Horizon = Horizon;
    for (size_t G = 0; G < 3; ++G) {
      if (GroupNodes[G] == 0)
        continue;
      double Denom = static_cast<double>(GroupNodes[G]) *
                     static_cast<double>(Horizon);
      Results[F].JobLoadPercent[G] =
          100.0 * static_cast<double>(JobTicks[F][G]) / Denom;
      Results[F].BackgroundLoadPercent[G] =
          100.0 * static_cast<double>(BackgroundTicks[G]) / Denom;
    }
  }
  return Results;
}

VoRunResult cws::runVirtualOrganization(const VoConfig &Config,
                                        StrategyKind Kind, uint64_t Seed) {
  std::vector<VoRunResult> Results = runMultiFlowVo(Config, {Kind}, Seed);
  return std::move(Results.front());
}

std::string cws::voConfigCanonical(const VoConfig &Config, StrategyKind Kind) {
  // Fixed `key=value` order; every field that changes scheduling
  // decisions appears. %g keeps the text stable across locales and
  // trailing-zero noise.
  std::string Out;
  char Buf[64];
  auto Num = [&](const char *Key, double Value) {
    std::snprintf(Buf, sizeof(Buf), "%s=%g ", Key, Value);
    Out += Buf;
  };
  auto Int = [&](const char *Key, long long Value) {
    std::snprintf(Buf, sizeof(Buf), "%s=%lld ", Key, Value);
    Out += Buf;
  };
  Out += std::string("strategy=") + strategyName(Kind) + " ";

  const GridConfig &G = Config.GridCfg;
  Int("grid.min_nodes", G.MinNodes);
  Int("grid.max_nodes", G.MaxNodes);
  Num("grid.fast_share", G.FastShare);
  Num("grid.medium_share", G.MediumShare);
  Num("grid.fast_lo", G.FastLo);
  Num("grid.fast_hi", G.FastHi);
  Num("grid.medium_lo", G.MediumLo);
  Num("grid.medium_hi", G.MediumHi);
  Num("grid.slow_perf", G.SlowPerf);
  Num("grid.price_base", G.PriceBase);
  Num("grid.price_exponent", G.PriceExponent);

  const WorkloadConfig &W = Config.Workload;
  Int("work.min_tasks", W.MinTasks);
  Int("work.max_tasks", W.MaxTasks);
  Int("work.max_width", W.MaxWidth);
  Int("work.ref_lo", W.RefTicksLo);
  Int("work.ref_hi", W.RefTicksHi);
  Num("work.volume_per_ref", W.VolumePerRefTick);
  Int("work.transfer_lo", W.TransferLo);
  Int("work.transfer_hi", W.TransferHi);
  Num("work.edge_density", W.EdgeDensity);
  Num("work.deadline_slack", W.DeadlineSlack);

  const StrategyConfig &S = Config.Strategy;
  Int("strat.max_levels", static_cast<long long>(S.MaxLevels));
  Num("strat.coarse_penalty", S.CoarsePenalty);
  Int("strat.coarsen_rounds", S.CoarsenSiblingRounds);
  Int("strat.coarsen_max_ref", S.CoarsenMaxRef);
  Num("strat.replication_factor", S.DataConfig.ReplicationFactor);
  Num("strat.static_penalty", S.DataConfig.StaticPenalty);
  Num("strat.replication_billing", S.DataConfig.ReplicationBilling);
  Num("strat.transfer_cost", S.Costs.TransferCostPerTick);
  Int("strat.max_front", static_cast<long long>(S.MaxFrontSize));
  // BuildThreads and AllowedNodes are deliberately absent: thread count
  // never changes results (pinned by determinism tests), and the tools
  // never restrict node domains at the VO level.

  const BackgroundConfig &B = Config.Background;
  Int("bg.gap_fast", B.MeanGapFast);
  Int("bg.gap_medium", B.MeanGapMedium);
  Int("bg.gap_slow", B.MeanGapSlow);
  Int("bg.dur_lo", B.DurLo);
  Int("bg.dur_hi", B.DurHi);
  Int("bg.lookahead", B.MaxLookahead);

  Int("vo.jobs", static_cast<long long>(Config.JobCount));
  Int("vo.arrive_lo", Config.InterarrivalLo);
  Int("vo.arrive_hi", Config.InterarrivalHi);
  Int("vo.negotiate_lo", Config.NegotiationLo);
  Int("vo.negotiate_hi", Config.NegotiationHi);
  Num("vo.quota", Config.UserQuota);
  Int("vo.execute", Config.ExecuteWithDeviations ? 1 : 0);
  Num("vo.exec_factor_lo", Config.Execution.FactorLo);
  Num("vo.exec_factor_hi", Config.Execution.FactorHi);
  Int("vo.exec_extension", Config.Execution.MaxExtension);
  Out += std::string("vo.invalidation=") +
         (Config.Invalidation == InvalidationMode::Index ? "index" : "scan");
  return Out;
}
