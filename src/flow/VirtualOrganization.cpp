//===-- flow/VirtualOrganization.cpp - Two-level VO simulation ------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "flow/VirtualOrganization.h"
#include "flow/Economy.h"
#include "flow/Metascheduler.h"
#include "obs/Journal.h"
#include "obs/Metrics.h"
#include "obs/Profiler.h"
#include "obs/TimeSeries.h"
#include "resource/Network.h"
#include "sim/Simulator.h"
#include "support/Check.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <iterator>
#include <limits>
#include <memory>
#include <optional>

using namespace cws;

namespace {

/// Shard-pipeline instrumentation (docs/OBSERVABILITY.md). Registered
/// once; values reset with the registry. The drain-latency histogram is
/// wall-clock and therefore nondeterministic — it is exposed for the
/// scaling bench and never byte-compared (the telemetry CSV samples an
/// explicit probe list that excludes it).
struct ShardPipelineMetrics {
  obs::Gauge &Count = obs::Registry::global().gauge(
      "cws_shard_count", "worker shards of the job-flow level");
  obs::Counter &AdmissionBatches = obs::Registry::global().counter(
      "cws_shard_admission_batches_total",
      "per-tick admission batches drained");
  obs::Counter &AdmissionJobs = obs::Registry::global().counter(
      "cws_shard_admission_jobs_total",
      "jobs ingested through batched admission");
  obs::Histogram &AdmissionBatchJobs = obs::Registry::global().histogram(
      "cws_shard_admission_batch_jobs", {1, 2, 4, 8, 16, 32, 64},
      "jobs per admission batch");
  obs::Counter &CommitBatches = obs::Registry::global().counter(
      "cws_shard_commit_batches_total", "commit-pipeline drains");
  obs::Counter &CommitJobs = obs::Registry::global().counter(
      "cws_shard_commit_jobs_total",
      "negotiations applied by the commit pipeline");
  obs::Histogram &CommitBatchJobs = obs::Registry::global().histogram(
      "cws_shard_commit_batch_jobs", {1, 2, 4, 8, 16, 32, 64},
      "negotiations per commit-pipeline drain");
  obs::Histogram &CommitDrainMicros = obs::Registry::global().histogram(
      "cws_shard_commit_drain_us",
      {50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000},
      "wall-clock microseconds per commit-pipeline drain");
};

ShardPipelineMetrics &shardMetrics() {
  static ShardPipelineMetrics M;
  return M;
}

} // namespace

size_t cws::resolveShardCount(size_t Configured) {
  size_t Resolved = Configured;
  if (Resolved == 0) {
    if (const char *Env = std::getenv("CWS_SHARDS")) {
      char *End = nullptr;
      long V = std::strtol(Env, &End, 10);
      if (End != Env && *End == '\0' && V > 0)
        Resolved = static_cast<size_t>(V);
    }
  }
  if (Resolved == 0)
    Resolved = 1;
  return std::min<size_t>(Resolved, 64);
}

std::vector<VoRunResult>
cws::runMultiFlowVo(const VoConfig &Config,
                    const std::vector<StrategyKind> &Kinds, uint64_t Seed) {
  CWS_CHECK(!Kinds.empty(), "need at least one flow");
  const size_t NumFlows = Kinds.size();
  const size_t ShardCount = resolveShardCount(Config.Shards);
  Prng Root(Seed);
  Grid Env = Grid::makeRandom(Config.GridCfg, Root);
  Network Net;
  Economy Econ;

  // One metascheduler strategy profile and one quota account per flow;
  // ShardCount job managers per flow (Managers[F * ShardCount + S]),
  // each owning the stripe of job ids congruent to its shard index
  // (Metascheduler::shardOfJob) — owner ids themselves stay pure in the
  // job id, so journals and timelines cannot see the shard count. The
  // env-change log is shared: commits by any flow and background
  // placements both occupy slots that other flows' open strategies may
  // have planned on, and each (flow, shard) manager drains the log with
  // its own cursor.
  EnvChangeLog ChangeLog;
  std::vector<std::unique_ptr<Metascheduler>> Metas;
  std::vector<std::unique_ptr<JobManager>> Managers;
  for (size_t F = 0; F < NumFlows; ++F) {
    StrategyConfig SC = Config.Strategy;
    SC.Kind = Kinds[F];
    unsigned User = Econ.addUser(Config.UserQuota);
    Metas.push_back(std::make_unique<Metascheduler>(Env, Net, Econ, SC));
    Metas.back()->setEnvChangeLog(&ChangeLog);
    Metas.back()->setReallocationMode(Config.Reallocation);
    Metas.back()->setRepairOracle(Config.RepairOracle);
    for (size_t S = 0; S < ShardCount; ++S) {
      Managers.push_back(std::make_unique<JobManager>(
          *Metas.back(), User, static_cast<int>(F)));
      Managers.back()->setInvalidationMode(Config.Invalidation);
    }
  }
  // Commit charges drain through per-shard ledgers folded at each tick
  // barrier, so the economy's float accumulation order is canonical
  // (ascending job id) at any shard count.
  Econ.beginLedgers(ShardCount);
  ShardPipelineMetrics &SM = shardMetrics();
  SM.Count.set(static_cast<int64_t>(ShardCount));

  Simulator Sim;
  if (Config.ExecuteWithDeviations)
    for (size_t F = 0; F < NumFlows; ++F) {
      // One fork per *flow* (not per shard manager) keeps the root
      // stream's draw count — and thus every downstream seed — equal at
      // any shard count; the per-job seed derivation inside the
      // managers does the rest.
      uint64_t ExecSeed = Root.fork().next();
      for (size_t S = 0; S < ShardCount; ++S)
        Managers[F * ShardCount + S]->enableExecution(Config.Execution,
                                                      ExecSeed);
    }
  Prng ArrivalRng = Root.fork();
  Prng NegotiationRng = Root.fork();
  Prng BackgroundRng = Root.fork();
  JobGenerator Gen(Config.Workload, Root.next());

  // Pre-generate the flow so the arrival schedule is independent of the
  // strategy types under test.
  std::vector<Job> Flow;
  Flow.reserve(Config.JobCount);
  Tick At = 0;
  for (size_t I = 0; I < Config.JobCount; ++I) {
    At += ArrivalRng.uniformInt(Config.InterarrivalLo,
                                Config.InterarrivalHi);
    Flow.push_back(Gen.next(At));
  }
  Tick LastArrival = Flow.empty() ? 0 : Flow.back().release();

  // Background flows run past the last arrival so every strategy's TTL
  // has a chance to close.
  Tick BackgroundUntil = LastArrival + 600;
  BackgroundLoad Background(Env, Sim, Config.Background, BackgroundRng);
  Background.setEnvChangeLog(&ChangeLog);
  // Every (flow, shard) manager runs its invalidation pass in parallel
  // (one lane per shard), journaling into a per-manager capture buffer;
  // the buffers are replayed flow-major, merged by ascending job id
  // within each flow — exactly the order a serial 1-shard pass appends
  // in, so the journal is byte-identical at any shard count.
  Background.setObserver([&Managers, NumFlows, ShardCount](Tick Now) {
    // One profiler scope per environment change on the calling thread;
    // the per-manager re-validation work joins it by name from the
    // worker lanes, so counts and work stay shard-invariant.
    CWS_PHASE("env.invalidate");
    obs::Journal &Jn = obs::Journal::global();
    std::vector<obs::JournalBuffer> Buffers(Managers.size());
    ThreadPool::global().parallelFor(
        Managers.size(),
        [&](size_t I) {
          obs::JournalCaptureScope Capture(Jn, &Buffers[I]);
          Managers[I]->onEnvironmentChange(Now);
        },
        /*MaxLanes=*/ShardCount);
    for (size_t F = 0; F < NumFlows; ++F) {
      std::vector<obs::JournalBuffer *> FlowBuffers;
      FlowBuffers.reserve(ShardCount);
      for (size_t S = 0; S < ShardCount; ++S)
        FlowBuffers.push_back(&Buffers[F * ShardCount + S]);
      Jn.appendBufferedByJob(FlowBuffers);
    }
  });
  Background.start(BackgroundUntil);

  // Wire the telemetry sampler to this run's grid and managers. Flow
  // labels mirror publishMultiFlowAggregates (strategy name, with a
  // `#<index>` suffix distinguishing duplicate kinds).
  obs::TimeSeries &Ts = obs::TimeSeries::global();
  const bool Sampling = Ts.enabled();
  if (Sampling) {
    Ts.addDefaultProbes(obs::Registry::global());
    std::vector<std::string> FlowNames;
    for (size_t I = 0; I < Kinds.size(); ++I) {
      std::string Label = strategyName(Kinds[I]);
      for (size_t P = 0; P < I; ++P)
        if (Kinds[P] == Kinds[I]) {
          Label += "#" + std::to_string(I);
          break;
        }
      FlowNames.push_back(std::move(Label));
    }
    // Sharded runs also expose one pseudo-flow track per shard (the
    // same totals sliced the other way); single-shard runs emit the
    // flow tracks alone, so the default telemetry CSV is byte-stable.
    if (ShardCount > 1)
      for (size_t S = 0; S < ShardCount; ++S)
        FlowNames.push_back("shard" + std::to_string(S));
    Ts.setFlowProvider(std::move(FlowNames), [&Managers, NumFlows,
                                              ShardCount] {
      std::vector<obs::FlowSample> Out;
      Out.reserve(NumFlows + (ShardCount > 1 ? ShardCount : 0));
      for (size_t F = 0; F < NumFlows; ++F) {
        int64_t Queued = 0, InFlight = 0;
        for (size_t S = 0; S < ShardCount; ++S) {
          const JobManager &M = *Managers[F * ShardCount + S];
          Queued += static_cast<int64_t>(M.queuedCount());
          InFlight += static_cast<int64_t>(M.inFlightCount());
        }
        Out.push_back({Queued, InFlight});
      }
      if (ShardCount > 1)
        for (size_t S = 0; S < ShardCount; ++S) {
          int64_t Queued = 0, InFlight = 0;
          for (size_t F = 0; F < NumFlows; ++F) {
            const JobManager &M = *Managers[F * ShardCount + S];
            Queued += static_cast<int64_t>(M.queuedCount());
            InFlight += static_cast<int64_t>(M.inFlightCount());
          }
          Out.push_back({Queued, InFlight});
        }
      return Out;
    });
    const Tick Lookahead = Ts.config().ReservedLookahead;
    Ts.setOccupancyProvider([&Env, Lookahead](Tick Prev, Tick Now) {
      std::vector<obs::NodeOccupancy> Out;
      Out.reserve(Env.size());
      for (const auto &N : Env.nodes()) {
        const Timeline &L = N.timeline();
        obs::NodeOccupancy O;
        if (Now > Prev) {
          double W = static_cast<double>(Now - Prev);
          O.Busy = static_cast<double>(L.busyTicksOf(
                       Prev, Now, JobOwnerBase,
                       std::numeric_limits<OwnerId>::max())) /
                   W;
          O.Background = static_cast<double>(L.busyTicksOf(
                             Prev, Now, BackgroundOwner, BackgroundOwner)) /
                         W;
        }
        O.Reserved = L.utilization(Now, Now + Lookahead);
        Out.push_back(O);
      }
      return Out;
    });
  }

  // Deal jobs to the flows round-robin and to shard managers by job
  // id. Arrival and negotiation events only *enqueue* work; the first
  // enqueue of a tick arms one end-of-tick drain that processes the
  // whole tick's batch — the expensive halves (strategy builds, tender
  // evaluation) run in parallel across shards against the tick-start
  // snapshot, the mutating halves apply serially in canonical ascending
  // job-id order. The batched pipeline is the semantics at *every*
  // shard count, 1 included: that is what makes journals, stats and
  // timelines independent of the shard count and thread interleaving.
  struct PendingArrival {
    size_t ManagerIdx;
    const Job *J;
    Tick Delay;
  };
  struct PendingNegotiation {
    size_t ManagerIdx;
    unsigned JobId;
  };
  std::vector<PendingArrival> ArrivalBatch;
  std::vector<PendingNegotiation> NegotiationBatch;
  bool DrainArmed = false;
  std::function<void(Tick)> Drain;
  auto Arm = [&Sim, &DrainArmed, &Drain](Tick) {
    if (DrainArmed)
      return;
    DrainArmed = true;
    Sim.atEndOfTick([&Drain](Tick Now) { Drain(Now); });
  };
  ThreadPool &Pool = ThreadPool::global();
  Drain = [&](Tick Now) {
    // Reset first: a zero-delay negotiation scheduled below lands on
    // this same tick and must re-arm a fresh drain behind itself.
    DrainArmed = false;
    // Admission: sort the tick's arrivals into canonical order, build
    // every strategy in parallel (one lane per shard, journal events
    // captured per job), then admit serially in ascending job id.
    if (!ArrivalBatch.empty()) {
      obs::PhaseScope AdmissionPhase("meta.admission");
      std::vector<PendingArrival> Batch;
      Batch.swap(ArrivalBatch);
      std::sort(Batch.begin(), Batch.end(),
                [](const PendingArrival &A, const PendingArrival &B) {
                  return A.J->id() < B.J->id();
                });
      SM.AdmissionBatches.add();
      SM.AdmissionJobs.add(Batch.size());
      SM.AdmissionBatchJobs.observe(static_cast<double>(Batch.size()));
      AdmissionPhase.work("jobs", Batch.size());
      std::vector<std::optional<JobManager::PreparedArrival>> Prepared(
          Batch.size());
      Pool.submitRange(
          0, Batch.size(),
          [&](size_t I) {
            Prepared[I].emplace(Managers[Batch[I].ManagerIdx]->prepareArrival(
                *Batch[I].J, Now));
          },
          /*MaxLanes=*/ShardCount);
      for (size_t I = 0; I < Batch.size(); ++I) {
        const PendingArrival &PA = Batch[I];
        if (!Managers[PA.ManagerIdx]->finishArrival(std::move(*Prepared[I]),
                                                    Now))
          continue;
        size_t ManagerIdx = PA.ManagerIdx;
        unsigned JobId = PA.J->id();
        Sim.after(PA.Delay, [&NegotiationBatch, &Arm, ManagerIdx,
                             JobId](Tick NegotiationNow) {
          NegotiationBatch.push_back({ManagerIdx, JobId});
          Arm(NegotiationNow);
        });
      }
    }
    // Commit pipeline: evaluate every tender against the tick-start
    // snapshot in parallel, then apply in ascending job id — grid
    // reservations and economy charges land in canonical order
    // regardless of shard count or thread interleaving.
    if (!NegotiationBatch.empty()) {
      auto DrainStart = std::chrono::steady_clock::now();
      std::vector<PendingNegotiation> Ready;
      Ready.swap(NegotiationBatch);
      std::sort(Ready.begin(), Ready.end(),
                [](const PendingNegotiation &A, const PendingNegotiation &B) {
                  return A.JobId < B.JobId;
                });
      SM.CommitBatches.add();
      SM.CommitJobs.add(Ready.size());
      SM.CommitBatchJobs.observe(static_cast<double>(Ready.size()));
      std::vector<size_t> Hints(Ready.size());
      {
        obs::PhaseScope PreparePhase("commit.prepare");
        PreparePhase.work("tenders", Ready.size());
        Pool.submitRange(
            0, Ready.size(),
            [&](size_t I) {
              Hints[I] = Managers[Ready[I].ManagerIdx]->prepareNegotiation(
                  Ready[I].JobId);
            },
            /*MaxLanes=*/ShardCount);
      }
      {
        obs::PhaseScope ApplyPhase("commit.apply");
        ApplyPhase.work("tenders", Ready.size());
        for (size_t I = 0; I < Ready.size(); ++I) {
          const PendingNegotiation &PN = Ready[I];
          Econ.setActiveShard(Metascheduler::shardOfJob(PN.JobId, ShardCount),
                              PN.JobId);
          std::optional<Tick> Completion =
              Managers[PN.ManagerIdx]->onNegotiation(PN.JobId, Now, Hints[I]);
          if (Completion) {
            size_t ManagerIdx = PN.ManagerIdx;
            unsigned JobId = PN.JobId;
            Sim.at(*Completion, [&Managers, ManagerIdx, JobId](Tick CNow) {
              Managers[ManagerIdx]->onCompletion(JobId, CNow);
            });
          }
        }
      }
      // Tick barrier: fold the per-shard charge ledgers canonically.
      Econ.mergeLedgers();
      SM.CommitDrainMicros.observe(static_cast<double>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - DrainStart)
              .count()));
    }
  };

  std::vector<size_t> FlowOf(Config.JobCount, 0);
  for (size_t I = 0; I < Flow.size(); ++I) {
    size_t F = I % NumFlows;
    FlowOf[Flow[I].id()] = F;
    const Job *J = &Flow[I];
    Tick Delay = NegotiationRng.uniformInt(Config.NegotiationLo,
                                           Config.NegotiationHi);
    size_t ManagerIdx =
        F * ShardCount + Metascheduler::shardOfJob(J->id(), ShardCount);
    Sim.at(J->release(),
           [&ArrivalBatch, &Arm, ManagerIdx, J, Delay](Tick Now) {
             ArrivalBatch.push_back({ManagerIdx, J, Delay});
             Arm(Now);
           });
  }

  Sim.run();
  Econ.mergeLedgers();

  if (Sampling) {
    // A final frame, then the per-node occupancy tracks: every surviving
    // reservation becomes a slice in the merged trace, classed by owner.
    Ts.sampleEvent(Sim.now(), "run.end");
    Env.forEachInterval([&Ts](unsigned Node, const Interval &I) {
      const char *Kind = I.Owner >= JobOwnerBase      ? "job"
                         : I.Owner == BackgroundOwner ? "background"
                                                      : "other";
      Ts.addOccupancySlice(Node, I.Begin, I.End, Kind, I.Owner);
    });
    // The providers capture this frame's grid and managers; drop them
    // before those go out of scope. Recorded frames stay exportable.
    Ts.clearProviders();
  }

  std::vector<VoRunResult> Results(Kinds.size());
  Tick Horizon = Sim.now();
  for (size_t F = 0; F < NumFlows; ++F) {
    Results[F].Kind = Kinds[F];
    Results[F].BackgroundJobs = Background.placed();
    Results[F].RepairOracle = Metas[F]->repairOracle();
    std::vector<VoJobStats> Merged;
    for (size_t S = 0; S < ShardCount; ++S) {
      std::vector<VoJobStats> Part = Managers[F * ShardCount + S]->takeStats();
      Merged.insert(Merged.end(), std::make_move_iterator(Part.begin()),
                    std::make_move_iterator(Part.end()));
    }
    // Each shard records its jobs in admission (ascending id) order;
    // the flow-level merge restores the canonical order a 1-shard run
    // produces directly.
    std::stable_sort(Merged.begin(), Merged.end(),
                     [](const VoJobStats &A, const VoJobStats &B) {
                       return A.JobId < B.JobId;
                     });
    Results[F].Jobs = std::move(Merged);
    for (const auto &St : Results[F].Jobs)
      Horizon = std::max(Horizon, St.Completion);
  }
  Horizon = std::max<Tick>(Horizon, 1);

  // Attribute node occupancy per flow via the owner ids.
  size_t GroupNodes[3] = {0, 0, 0};
  std::vector<std::array<Tick, 3>> JobTicks(Kinds.size(), {0, 0, 0});
  Tick BackgroundTicks[3] = {0, 0, 0};
  for (const auto &N : Env.nodes()) {
    auto G = static_cast<size_t>(N.group());
    ++GroupNodes[G];
    for (const auto &I : N.timeline().intervals()) {
      Tick Len =
          std::min(I.End, Horizon) - std::min(I.Begin, Horizon);
      if (I.Owner >= JobOwnerBase) {
        auto JobId = static_cast<size_t>(I.Owner - JobOwnerBase);
        CWS_CHECK(JobId < FlowOf.size(), "unknown job owner");
        JobTicks[FlowOf[JobId]][G] += Len;
      } else if (I.Owner == BackgroundOwner) {
        BackgroundTicks[G] += Len;
      }
    }
  }
  for (size_t F = 0; F < Kinds.size(); ++F) {
    Results[F].Horizon = Horizon;
    for (size_t G = 0; G < 3; ++G) {
      if (GroupNodes[G] == 0)
        continue;
      double Denom = static_cast<double>(GroupNodes[G]) *
                     static_cast<double>(Horizon);
      Results[F].JobLoadPercent[G] =
          100.0 * static_cast<double>(JobTicks[F][G]) / Denom;
      Results[F].BackgroundLoadPercent[G] =
          100.0 * static_cast<double>(BackgroundTicks[G]) / Denom;
    }
  }
  return Results;
}

VoRunResult cws::runVirtualOrganization(const VoConfig &Config,
                                        StrategyKind Kind, uint64_t Seed) {
  std::vector<VoRunResult> Results = runMultiFlowVo(Config, {Kind}, Seed);
  return std::move(Results.front());
}

std::string cws::voConfigCanonical(const VoConfig &Config, StrategyKind Kind) {
  // Fixed `key=value` order; every field that changes scheduling
  // decisions appears. %g keeps the text stable across locales and
  // trailing-zero noise.
  std::string Out;
  char Buf[64];
  auto Num = [&](const char *Key, double Value) {
    std::snprintf(Buf, sizeof(Buf), "%s=%g ", Key, Value);
    Out += Buf;
  };
  auto Int = [&](const char *Key, long long Value) {
    std::snprintf(Buf, sizeof(Buf), "%s=%lld ", Key, Value);
    Out += Buf;
  };
  Out += std::string("strategy=") + strategyName(Kind) + " ";

  const GridConfig &G = Config.GridCfg;
  Int("grid.min_nodes", G.MinNodes);
  Int("grid.max_nodes", G.MaxNodes);
  Num("grid.fast_share", G.FastShare);
  Num("grid.medium_share", G.MediumShare);
  Num("grid.fast_lo", G.FastLo);
  Num("grid.fast_hi", G.FastHi);
  Num("grid.medium_lo", G.MediumLo);
  Num("grid.medium_hi", G.MediumHi);
  Num("grid.slow_perf", G.SlowPerf);
  Num("grid.price_base", G.PriceBase);
  Num("grid.price_exponent", G.PriceExponent);

  const WorkloadConfig &W = Config.Workload;
  Int("work.min_tasks", W.MinTasks);
  Int("work.max_tasks", W.MaxTasks);
  Int("work.max_width", W.MaxWidth);
  Int("work.ref_lo", W.RefTicksLo);
  Int("work.ref_hi", W.RefTicksHi);
  Num("work.volume_per_ref", W.VolumePerRefTick);
  Int("work.transfer_lo", W.TransferLo);
  Int("work.transfer_hi", W.TransferHi);
  Num("work.edge_density", W.EdgeDensity);
  Num("work.deadline_slack", W.DeadlineSlack);

  const StrategyConfig &S = Config.Strategy;
  Int("strat.max_levels", static_cast<long long>(S.MaxLevels));
  Num("strat.coarse_penalty", S.CoarsePenalty);
  Int("strat.coarsen_rounds", S.CoarsenSiblingRounds);
  Int("strat.coarsen_max_ref", S.CoarsenMaxRef);
  Num("strat.replication_factor", S.DataConfig.ReplicationFactor);
  Num("strat.static_penalty", S.DataConfig.StaticPenalty);
  Num("strat.replication_billing", S.DataConfig.ReplicationBilling);
  Num("strat.transfer_cost", S.Costs.TransferCostPerTick);
  Int("strat.max_front", static_cast<long long>(S.MaxFrontSize));
  // BuildThreads and AllowedNodes are deliberately absent: thread count
  // never changes results (pinned by determinism tests), and the tools
  // never restrict node domains at the VO level.

  const BackgroundConfig &B = Config.Background;
  Int("bg.gap_fast", B.MeanGapFast);
  Int("bg.gap_medium", B.MeanGapMedium);
  Int("bg.gap_slow", B.MeanGapSlow);
  Int("bg.dur_lo", B.DurLo);
  Int("bg.dur_hi", B.DurHi);
  Int("bg.lookahead", B.MaxLookahead);

  Int("vo.jobs", static_cast<long long>(Config.JobCount));
  Int("vo.arrive_lo", Config.InterarrivalLo);
  Int("vo.arrive_hi", Config.InterarrivalHi);
  Int("vo.negotiate_lo", Config.NegotiationLo);
  Int("vo.negotiate_hi", Config.NegotiationHi);
  Num("vo.quota", Config.UserQuota);
  Int("vo.execute", Config.ExecuteWithDeviations ? 1 : 0);
  Num("vo.exec_factor_lo", Config.Execution.FactorLo);
  Num("vo.exec_factor_hi", Config.Execution.FactorHi);
  Int("vo.exec_extension", Config.Execution.MaxExtension);
  // The shard count is deliberately absent, like BuildThreads: results
  // are shard-invariant (pinned by tests), so two runs of one
  // configuration at different shard counts must share a hash. The
  // resolved count still reaches the provenance stamp as its own
  // `shards` field, which `cws-diff` compares selectively.
  Out += std::string("vo.invalidation=") +
         (Config.Invalidation == InvalidationMode::Index ? "index" : "scan");
  // The repair oracle is absent too: it is a side-effect-free check
  // (like the journal toggle), so an oracle run simulates the same
  // configuration as a plain one.
  Out += std::string(" vo.reallocation=") +
         reallocationModeName(Config.Reallocation);
  return Out;
}
