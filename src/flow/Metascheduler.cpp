//===-- flow/Metascheduler.cpp - Job-flow metascheduler -------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "flow/Metascheduler.h"
#include "core/Repair.h"
#include "job/Job.h"
#include "obs/Journal.h"
#include "obs/Metrics.h"
#include "obs/Profiler.h"
#include "obs/TimeSeries.h"
#include "obs/Trace.h"
#include "support/Check.h"

#include <algorithm>
#include <cmath>

using namespace cws;

const char *cws::reallocationModeName(ReallocationMode M) {
  return M == ReallocationMode::Repair ? "repair" : "rebuild";
}

namespace {
struct MetaMetrics {
  obs::Counter &Commits = obs::Registry::global().counter(
      "cws_meta_commits_total", "supporting schedules committed");
  obs::Counter &QuotaDenied = obs::Registry::global().counter(
      "cws_meta_commit_quota_denied_total",
      "commits refused because the user could not afford the schedule");
  obs::Counter &SlotConflicts = obs::Registry::global().counter(
      "cws_meta_commit_conflicts_total",
      "commits refused because a reserved slot was no longer free");
  obs::Counter &Reallocations = obs::Registry::global().counter(
      "cws_meta_reallocations_total",
      "reallocations that delivered an admissible replacement strategy");
  obs::Counter &ReallocAttempts = obs::Registry::global().counter(
      "cws_meta_realloc_attempts_total",
      "reallocation requests received, before the outcome is known");
  obs::Counter &RepairedShift = obs::Registry::global().counter(
      "cws_meta_realloc_repaired_total{stage=\"shift\"}",
      "reallocations resolved by shifting the one broken reservation");
  obs::Counter &RepairedDp = obs::Registry::global().counter(
      "cws_meta_realloc_repaired_total{stage=\"dp\"}",
      "reallocations resolved by re-running the DP for the broken works");
  obs::Counter &Rebuilt = obs::Registry::global().counter(
      "cws_meta_realloc_rebuilt_total",
      "reallocations that fell through to the full strategy rebuild");
  obs::Counter &ReallocFailed = obs::Registry::global().counter(
      "cws_meta_realloc_failed_total",
      "reallocations whose rebuild came back inadmissible");
  static MetaMetrics &get() {
    static MetaMetrics M;
    return M;
  }
};
} // namespace

bool Metascheduler::commit(const Job &J, const ScheduleVariant &Variant,
                           unsigned UserId, Tick Now) {
  CWS_CHECK(Variant.feasible(), "committing an infeasible variant");
  return commitDistribution(J, Variant.Result.Dist, UserId, Now);
}

bool Metascheduler::commitDistribution(const Job &J, const Distribution &D,
                                       unsigned UserId, Tick Now) {
  MetaMetrics &M = MetaMetrics::get();
  obs::Span CommitSpan("flow", "meta.commit", "job",
                       static_cast<int64_t>(J.id()));
  obs::Journal &Jn = obs::Journal::global();
  double Cost = D.economicCost();
  auto Attempt = [&](bool Ok, const char *Why) {
    if (Jn.enabled())
      Jn.append(obs::JournalKind::CommitAttempt,
                static_cast<int64_t>(J.id()), Now,
                {{"cost", std::llround(Cost)}, {"ok", Ok ? 1 : 0}}, Why);
  };
  if (!Econ.canAfford(UserId, Cost)) {
    M.QuotaDenied.add();
    CommitSpan.arg("ok", 0);
    Attempt(false, "quota-denied");
    return false;
  }
  if (!D.commit(Env, ownerOf(J.id()))) {
    M.SlotConflicts.add();
    CommitSpan.arg("ok", 0);
    Attempt(false, "slot-conflict");
    return false;
  }
  bool Charged = Econ.charge(UserId, Cost);
  CWS_CHECK(Charged, "charge failed after affordability check");
  if (ChangeLog)
    for (const Placement &P : D.placements())
      ChangeLog->noteAdded(P.NodeId, P.Start, P.End);
  M.Commits.add();
  CommitSpan.arg("ok", 1);
  Attempt(true, "ok");
  obs::TimeSeries::global().sampleEvent(Now, "commit");
  return true;
}

ReallocationResult Metascheduler::reallocate(const Job &J,
                                             const Strategy &Stale,
                                             unsigned UserId, Tick Now) {
  MetaMetrics &M = MetaMetrics::get();
  M.ReallocAttempts.add();
  obs::TimeSeries::global().sampleEvent(Now, "reallocate");
  obs::Span ReallocSpan("flow", "meta.reallocate", "job",
                        static_cast<int64_t>(J.id()));
  obs::Journal &Jn = obs::Journal::global();
  if (Jn.enabled())
    Jn.append(obs::JournalKind::Reallocate, static_cast<int64_t>(J.id()),
              Now, {}, "stale-strategy");
  OwnerId Owner = ownerOf(J.id());
  ReallocationResult Out;

  if (ReallocMode == ReallocationMode::Repair && Stale.admissible()) {
    obs::PhaseScope RepairPhase("meta.repair");
    const Job &Sched = Stale.scheduledJob();
    RepairInputs In{Env, Net, Config, Owner, Now};
    // Candidate order: feasible variants, cheapest first — the flow
    // layer commits bestByCost, so the first variant that repairs is
    // the one whose revival is worth the most.
    std::vector<const ScheduleVariant *> Cands;
    for (const ScheduleVariant &V : Stale.variants())
      if (V.feasible())
        Cands.push_back(&V);
    std::stable_sort(Cands.begin(), Cands.end(),
                     [](const ScheduleVariant *A, const ScheduleVariant *B) {
                       return A->Result.Dist.economicCost() <
                              B->Result.Dist.economicCost();
                     });
    if (Jn.enabled())
      Jn.append(obs::JournalKind::RepairAttempt,
                static_cast<int64_t>(J.id()), Now,
                {{"variants", static_cast<int64_t>(Cands.size())}}, "staged");
    // Try every candidate and keep the cheapest success: the flow
    // layer commits bestByCost, and the rebuild oracle scores the
    // repair against the rebuilt best, so cost regret — not
    // first-success latency — is what the selection minimizes. Per
    // candidate the shift is preferred (most continuous: one placement
    // moves, nothing else changes); the DP only runs where no shift
    // fits.
    std::optional<VariantRepair> R;
    for (const ScheduleVariant *V : Cands) {
      std::optional<VariantRepair> Cand = repairVariantByShift(Sched, *V, In);
      if (!Cand)
        Cand = repairVariantByDp(Sched, *V, In);
      if (!Cand)
        continue;
      if (!R ||
          Cand->Repaired.Result.Dist.economicCost() <
              R->Repaired.Result.Dist.economicCost() - 1e-9)
        R = std::move(Cand);
    }
    if (R) {
      bool IsShift = R->Stage == RepairStage::Shift;
      RepairPhase.work("repaired", 1);
      RepairPhase.work("placements_pinned", R->PlacementsPinned);
      RepairPhase.work("works_rerun", R->WorksRerun);
      Out.S = Strategy::repaired(Stale, std::move(R->Repaired), Now);
      Out.Stage = R->Stage;
      (IsShift ? M.RepairedShift : M.RepairedDp).add();
      M.Reallocations.add();
      if (Jn.enabled())
        Jn.append(obs::JournalKind::RepairOutcome,
                  static_cast<int64_t>(J.id()), Now,
                  {{"stage", IsShift ? 1 : 2},
                   {"ok", 1},
                   {"delta", R->ShiftDelta},
                   {"works", static_cast<int64_t>(R->WorksRerun)},
                   {"pinned", static_cast<int64_t>(R->PlacementsPinned)}},
                  repairStageName(R->Stage));
      if (OracleEnabled)
        checkRepairOracle(J, Out.S, UserId, Owner, Now);
      // The swap: the old reservations die only now, with the repaired
      // replacement validated against the live grid.
      Env.releaseOwner(Owner);
      ReallocSpan.arg("stage", IsShift ? 1 : 2);
      return Out;
    }
  }

  // Stage 3 (and the whole of rebuild mode): full rebuild,
  // build-then-swap — the job's reservations are released only once an
  // admissible replacement exists, so a failed rebuild leaves the old
  // strategy's state intact for the caller's rejection path.
  Grid Scratch = Env;
  Scratch.releaseOwner(Owner);
  Out.S = Strategy::build(J, Scratch, Net, Config, Owner, Now);
  if (Out.S.admissible()) {
    Out.Stage = RepairStage::Rebuild;
    M.Rebuilt.add();
    M.Reallocations.add();
    Env.releaseOwner(Owner);
  } else {
    Out.Stage = RepairStage::Failed;
    M.ReallocFailed.add();
  }
  if (Jn.enabled() && ReallocMode == ReallocationMode::Repair)
    Jn.append(obs::JournalKind::RepairOutcome, static_cast<int64_t>(J.id()),
              Now,
              {{"stage", 3}, {"ok", Out.Stage == RepairStage::Rebuild ? 1 : 0}},
              repairStageName(Out.Stage));
  ReallocSpan.arg("stage", 3);
  return Out;
}

void Metascheduler::checkRepairOracle(const Job &J, const Strategy &Repaired,
                                      unsigned UserId, OwnerId Owner,
                                      Tick Now) {
  // The reference rebuild must not perturb the run: the grid is copied
  // and the journal events of the build are swallowed by a throwaway
  // capture buffer (metric counters still tick — they are advisory).
  obs::JournalBuffer Discard;
  obs::JournalCaptureScope Swallow(obs::Journal::global(), &Discard);
  Grid Scratch = Env;
  Scratch.releaseOwner(Owner);
  Strategy Rebuilt = Strategy::build(J, Scratch, Net, Config, Owner, Now);

  Oracle.Checked++;
  const ScheduleVariant *Best = Repaired.bestByCost();
  if (!Best)
    return;
  const Job &Sched = Repaired.scheduledJob();
  const Distribution &D = Best->Result.Dist;
  if (D.covers(Sched) && D.makespan() <= Sched.deadline() &&
      D.fitsGrid(Env, Owner))
    Oracle.Feasible++;
  if (Econ.canAfford(UserId, D.economicCost()))
    Oracle.Affordable++;
  const ScheduleVariant *Ref = Rebuilt.bestByCost();
  if (!Ref) {
    Oracle.NotWorse++;
    return;
  }
  Oracle.RepairCost += D.economicCost();
  Oracle.RebuildCost += Ref->Result.Dist.economicCost();
  if (D.economicCost() <= Ref->Result.Dist.economicCost() + 1e-9)
    Oracle.NotWorse++;
}
