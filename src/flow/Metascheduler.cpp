//===-- flow/Metascheduler.cpp - Job-flow metascheduler -------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "flow/Metascheduler.h"
#include "job/Job.h"
#include "obs/Journal.h"
#include "obs/Metrics.h"
#include "obs/TimeSeries.h"
#include "obs/Trace.h"
#include "support/Check.h"

#include <cmath>

using namespace cws;

namespace {
struct MetaMetrics {
  obs::Counter &Commits = obs::Registry::global().counter(
      "cws_meta_commits_total", "supporting schedules committed");
  obs::Counter &QuotaDenied = obs::Registry::global().counter(
      "cws_meta_commit_quota_denied_total",
      "commits refused because the user could not afford the schedule");
  obs::Counter &SlotConflicts = obs::Registry::global().counter(
      "cws_meta_commit_conflicts_total",
      "commits refused because a reserved slot was no longer free");
  obs::Counter &Reallocations = obs::Registry::global().counter(
      "cws_meta_reallocations_total",
      "stale strategies dropped and rebuilt from the current load");
  static MetaMetrics &get() {
    static MetaMetrics M;
    return M;
  }
};
} // namespace

bool Metascheduler::commit(const Job &J, const ScheduleVariant &Variant,
                           unsigned UserId, Tick Now) {
  CWS_CHECK(Variant.feasible(), "committing an infeasible variant");
  return commitDistribution(J, Variant.Result.Dist, UserId, Now);
}

bool Metascheduler::commitDistribution(const Job &J, const Distribution &D,
                                       unsigned UserId, Tick Now) {
  MetaMetrics &M = MetaMetrics::get();
  obs::Span CommitSpan("flow", "meta.commit", "job",
                       static_cast<int64_t>(J.id()));
  obs::Journal &Jn = obs::Journal::global();
  double Cost = D.economicCost();
  auto Attempt = [&](bool Ok, const char *Why) {
    if (Jn.enabled())
      Jn.append(obs::JournalKind::CommitAttempt,
                static_cast<int64_t>(J.id()), Now,
                {{"cost", std::llround(Cost)}, {"ok", Ok ? 1 : 0}}, Why);
  };
  if (!Econ.canAfford(UserId, Cost)) {
    M.QuotaDenied.add();
    CommitSpan.arg("ok", 0);
    Attempt(false, "quota-denied");
    return false;
  }
  if (!D.commit(Env, ownerOf(J.id()))) {
    M.SlotConflicts.add();
    CommitSpan.arg("ok", 0);
    Attempt(false, "slot-conflict");
    return false;
  }
  bool Charged = Econ.charge(UserId, Cost);
  CWS_CHECK(Charged, "charge failed after affordability check");
  if (ChangeLog)
    for (const Placement &P : D.placements())
      ChangeLog->noteAdded(P.NodeId, P.Start, P.End);
  M.Commits.add();
  CommitSpan.arg("ok", 1);
  Attempt(true, "ok");
  obs::TimeSeries::global().sampleEvent(Now, "commit");
  return true;
}

Strategy Metascheduler::reallocate(const Job &J, Tick Now) {
  MetaMetrics::get().Reallocations.add();
  obs::TimeSeries::global().sampleEvent(Now, "reallocate");
  obs::Span ReallocSpan("flow", "meta.reallocate", "job",
                        static_cast<int64_t>(J.id()));
  obs::Journal &Jn = obs::Journal::global();
  if (Jn.enabled())
    Jn.append(obs::JournalKind::Reallocate, static_cast<int64_t>(J.id()),
              Now, {}, "stale-strategy");
  Env.releaseOwner(ownerOf(J.id()));
  return buildStrategy(J, Now);
}
