//===-- flow/Metascheduler.cpp - Job-flow metascheduler -------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "flow/Metascheduler.h"
#include "job/Job.h"
#include "support/Check.h"

using namespace cws;

bool Metascheduler::commit(const Job &J, const ScheduleVariant &Variant,
                           unsigned UserId) {
  CWS_CHECK(Variant.feasible(), "committing an infeasible variant");
  return commitDistribution(J, Variant.Result.Dist, UserId);
}

bool Metascheduler::commitDistribution(const Job &J, const Distribution &D,
                                       unsigned UserId) {
  double Cost = D.economicCost();
  if (!Econ.canAfford(UserId, Cost))
    return false;
  if (!D.commit(Env, ownerOf(J.id())))
    return false;
  bool Charged = Econ.charge(UserId, Cost);
  CWS_CHECK(Charged, "charge failed after affordability check");
  return true;
}

Strategy Metascheduler::reallocate(const Job &J, Tick Now) {
  Env.releaseOwner(ownerOf(J.id()));
  return buildStrategy(J, Now);
}
