//===-- flow/Economy.h - Virtual organization economics ---------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The quota economy of the virtual organization. Costs "are not
/// calculated in real money, but in some conventional units (quotas)";
/// users pay more for faster nodes and earlier starts, and a user's
/// dynamic priority follows the quota they have left.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_FLOW_ECONOMY_H
#define CWS_FLOW_ECONOMY_H

#include <cstddef>
#include <vector>

namespace cws {

/// Quota accounts of a virtual organization's users.
class Economy {
public:
  /// Opens an account with \p Quota conventional units; returns its id.
  unsigned addUser(double Quota);

  size_t userCount() const { return Accounts.size(); }

  double quota(unsigned User) const;
  double spent(unsigned User) const;
  double remaining(unsigned User) const;

  /// True when the user still has \p Cost units available.
  bool canAfford(unsigned User, double Cost) const;

  /// Debits \p Cost; fails (no-op, returns false) beyond the quota.
  bool charge(unsigned User, double Cost);

  /// Credits \p Amount back (e.g. a cancelled reservation).
  void refund(unsigned User, double Amount);

  /// Grants additional quota (the "dynamic priority change" lever: a
  /// user raising the execution cost they can pay).
  void grant(unsigned User, double Amount);

  /// Dynamic priority in [0, 1]: the user's share of remaining quota
  /// relative to the richest user. 0 when everyone is broke.
  double priority(unsigned User) const;

private:
  struct Account {
    double Quota;
    double Spent;
  };
  const Account &account(unsigned User) const;

  std::vector<Account> Accounts;
};

} // namespace cws

#endif // CWS_FLOW_ECONOMY_H
