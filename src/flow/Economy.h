//===-- flow/Economy.h - Virtual organization economics ---------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The quota economy of the virtual organization. Costs "are not
/// calculated in real money, but in some conventional units (quotas)";
/// users pay more for faster nodes and earlier starts, and a user's
/// dynamic priority follows the quota they have left.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_FLOW_ECONOMY_H
#define CWS_FLOW_ECONOMY_H

#include <cstddef>
#include <vector>

namespace cws {

/// Quota accounts of a virtual organization's users.
///
/// Sharded runs open per-shard *ledgers*: while ledgers are open,
/// charge() records a deferred entry (user, job, amount) into the
/// active shard's ledger instead of debiting the account, and
/// canAfford() counts those pending debits. mergeLedgers() — called at
/// every tick barrier — folds all entries into the accounts in
/// ascending job-id order, so the floating-point accumulation order
/// (and therefore every later affordability verdict) is identical at
/// any shard count and insensitive to the order shards recorded their
/// charges in.
class Economy {
public:
  /// Opens an account with \p Quota conventional units; returns its id.
  unsigned addUser(double Quota);

  size_t userCount() const { return Accounts.size(); }

  double quota(unsigned User) const;
  double spent(unsigned User) const;
  double remaining(unsigned User) const;

  /// True when the user still has \p Cost units available.
  bool canAfford(unsigned User, double Cost) const;

  /// Debits \p Cost; fails (no-op, returns false) beyond the quota.
  bool charge(unsigned User, double Cost);

  /// Credits \p Amount back (e.g. a cancelled reservation).
  void refund(unsigned User, double Amount);

  /// Grants additional quota (the "dynamic priority change" lever: a
  /// user raising the execution cost they can pay).
  void grant(unsigned User, double Amount);

  /// Dynamic priority in [0, 1]: the user's share of remaining quota
  /// relative to the richest user. 0 when everyone is broke.
  double priority(unsigned User) const;

  /// Opens \p Shards empty ledgers and routes subsequent charges
  /// through them (see the class comment). Idempotent per run; closes
  /// any previous ledgers by merging first.
  void beginLedgers(size_t Shards);

  /// True while charges are being deferred into ledgers.
  bool ledgersOpen() const { return !Ledgers.empty(); }

  /// Selects the ledger the next charges record to and the job id that
  /// tags them for the canonical merge.
  void setActiveShard(size_t Shard, unsigned JobId);

  /// Folds every ledger entry into the accounts in ascending job-id
  /// order and empties the ledgers (they stay open). Deterministic:
  /// the fold order depends only on the set of entries, never on the
  /// shard count or recording order.
  void mergeLedgers();

  /// Deferred debits of \p User not yet merged.
  double pendingOf(unsigned User) const;

private:
  struct Account {
    double Quota;
    double Spent;
  };
  /// One deferred charge, tagged for the canonical merge order.
  struct LedgerEntry {
    unsigned User;
    unsigned JobId;
    double Amount;
  };
  const Account &account(unsigned User) const;

  std::vector<Account> Accounts;
  std::vector<std::vector<LedgerEntry>> Ledgers;
  size_t ActiveShard = 0;
  unsigned ActiveJobId = 0;
};

} // namespace cws

#endif // CWS_FLOW_ECONOMY_H
