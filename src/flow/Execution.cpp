//===-- flow/Execution.cpp - Executing committed schedules ----------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "flow/Execution.h"
#include "job/Job.h"
#include "resource/Grid.h"
#include "resource/Network.h"
#include "support/Check.h"

#include <algorithm>
#include <cmath>

using namespace cws;

ExecutionResult cws::executeDistribution(const Job &J, const Distribution &D,
                                         const Grid &Env, Prng &Rng,
                                         const ExecutionConfig &Config) {
  CWS_CHECK(Config.FactorLo > 0.0 && Config.FactorLo <= Config.FactorHi,
            "invalid duration factor range");
  CWS_CHECK(Config.MaxExtension >= 0, "negative extension");
  CWS_CHECK(D.covers(J), "executing an incomplete distribution");

  // Transfers are re-evaluated with the plan's data policy and bounded
  // by the planned gap of each edge: the plan already demonstrated the
  // data can arrive within that window, and the replicas it created
  // still exist at execution time.
  Network Net;
  DataPolicy Policy(Config.DataKind, Net, Config.DataConfig);

  ExecutionResult Result;
  Result.Tasks.resize(J.taskCount());
  std::vector<bool> Done(J.taskCount(), false);

  for (unsigned TaskId : J.topoOrder()) {
    const Placement *P = D.find(TaskId);
    TaskExecution &E = Result.Tasks[TaskId];
    E.TaskId = TaskId;
    E.NodeId = P->NodeId;

    // Data readiness from actual predecessor finishes.
    Tick Ready = 0;
    for (size_t EdgeIdx : J.inEdges(TaskId)) {
      const DataEdge &Edge = J.edge(EdgeIdx);
      CWS_CHECK(Done[Edge.Src], "topological execution order violated");
      const TaskExecution &Pred = Result.Tasks[Edge.Src];
      const Placement *PredPlan = D.find(Edge.Src);
      Tick Tr =
          Policy.previewTicks(Edge.Src, Edge.BaseTransfer, Pred.NodeId,
                              P->NodeId);
      Tick PlannedGap = std::max<Tick>(0, P->Start - PredPlan->End);
      Ready = std::max(Ready, Pred.End + std::min(Tr, PlannedGap));
    }

    // Opportunistic early start: allowed when the lead-in before the
    // reservation is completely unreserved (reservations — even this
    // job's own — are hard boundaries).
    Tick Start = P->Start;
    if (Ready < P->Start &&
        Env.node(P->NodeId).timeline().isFree(Ready, P->Start))
      Start = Ready;
    Start = std::max(Start, Ready);

    Tick Reserved = P->End - P->Start;
    double Factor = Rng.uniformReal(Config.FactorLo, Config.FactorHi);
    Tick Actual = std::max<Tick>(
        1, static_cast<Tick>(
               std::ceil(static_cast<double>(Reserved) * Factor - 1e-9)));
    Tick End = Start + Actual;

    if (End > P->End) {
      // The wall limit is hit: the local system grants an extension only
      // when it is short and the node has no one waiting.
      E.Overran = true;
      ++Result.Overruns;
      Tick Overhang = End - P->End;
      bool Grantable = Overhang <= Config.MaxExtension &&
                       Env.node(P->NodeId).timeline().isFree(P->End, End);
      if (!Grantable) {
        E.Killed = true;
        ++Result.Kills;
        E.Start = Start;
        E.End = std::min(End, P->End);
        Result.Succeeded = false;
        Result.MetDeadline = false;
        return Result;
      }
    } else if (End < P->End) {
      ++Result.EarlyFinishes;
    }

    E.Start = Start;
    E.End = End;
    Done[TaskId] = true;
    Result.Completion = std::max(Result.Completion, End);
  }

  Result.Succeeded = true;
  Result.MetDeadline = Result.Completion <= J.deadline();
  Result.CompletionGain = D.makespan() - Result.Completion;
  return Result;
}
