//===-- flow/Dispatch.h - Job-flow distribution across domains --*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metascheduler's domain dispatch: "users submit jobs to the
/// metascheduler which distributes job-flows between processor node
/// domains according to the selected scheduling and resource
/// co-allocation strategy". Four policies: round-robin, least booked
/// load, least forecast load (Section-5 forecasting), and an economic
/// tender where every domain bids its cheapest admissible schedule.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_FLOW_DISPATCH_H
#define CWS_FLOW_DISPATCH_H

#include "core/Strategy.h"
#include "flow/Domain.h"
#include "flow/Forecast.h"
#include "resource/Network.h"

#include <cstddef>
#include <optional>
#include <vector>

namespace cws {

/// How the metascheduler picks a domain for a job.
enum class DispatchPolicy {
  /// Cycle through domains regardless of state.
  RoundRobin,
  /// Least booked utilization over the job's deadline window.
  LeastLoaded,
  /// Least EWMA-forecast load (requires feeding the forecaster).
  LeastForecast,
  /// Every domain bids; cheapest admissible strategy wins.
  CheapestBid,
};

/// Short name ("round-robin", ...).
const char *dispatchPolicyName(DispatchPolicy Policy);

/// One dispatch outcome: the chosen domain and the strategy built on
/// it (admissible or not).
struct DispatchDecision {
  size_t DomainIdx = 0;
  Strategy S;
  /// Per-domain cheapest admissible cost collected by CheapestBid
  /// (empty for other policies; infinity marks inadmissible bids).
  std::vector<double> Bids;
};

/// Distributes jobs of one flow across the domains of a grid.
class DomainDispatcher {
public:
  DomainDispatcher(Grid &Env, const Network &Net, StrategyConfig Config,
                   std::vector<Domain> Domains, DispatchPolicy Policy);

  /// Picks a domain for \p J at \p Now and builds the flow's strategy
  /// restricted to it. For CheapestBid this builds one strategy per
  /// domain and returns the winner's.
  DispatchDecision dispatch(const Job &J, OwnerId Owner, Tick Now);

  /// Feeds the forecaster with the utilization window ending at \p Now
  /// (call periodically when using LeastForecast).
  void observeLoad(Tick Now, Tick Window = 50);

  const std::vector<Domain> &domains() const { return Domains; }
  DispatchPolicy policy() const { return Policy; }
  const LoadForecaster &forecaster() const { return Forecaster; }

private:
  Strategy buildOn(const Job &J, const Domain &D, OwnerId Owner,
                   Tick Now) const;

  /// Journals the routing decision (domain, bid count, policy).
  void journalDecision(const Job &J, const DispatchDecision &Decision,
                       Tick Now) const;

  Grid &Env;
  const Network &Net;
  StrategyConfig Config;
  std::vector<Domain> Domains;
  DispatchPolicy Policy;
  LoadForecaster Forecaster;
  size_t NextRoundRobin = 0;
};

} // namespace cws

#endif // CWS_FLOW_DISPATCH_H
