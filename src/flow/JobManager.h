//===-- flow/JobManager.h - Per-flow job managers ---------------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The job manager of one flow (Fig. 1's middle layer). It keeps every
/// active job's strategy alive: records admissibility and the start
/// forecast at arrival, picks the supporting schedule that still fits at
/// commit time (counting switches), requests reallocation from the
/// metascheduler when the whole strategy went stale, and tracks each
/// strategy's time-to-live as background load accumulates.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_FLOW_JOBMANAGER_H
#define CWS_FLOW_JOBMANAGER_H

#include "core/Strategy.h"
#include "flow/Execution.h"
#include "flow/Metascheduler.h"
#include "job/Job.h"
#include "obs/Journal.h"
#include "resource/SlotIndex.h"
#include "sim/Time.h"

#include <cstddef>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

namespace cws {

/// How a job manager finds the strategies an environment change broke.
enum class InvalidationMode {
  /// Re-validate every open strategy placement by placement (the
  /// original full scan; kept as the differential-testing oracle).
  Scan,
  /// Re-validate only the jobs whose indexed slots intersect the
  /// ranges the change actually touched (needs the metascheduler's
  /// env-change log; falls back to the scan without one).
  Index,
};

/// Per-job QoS record of one virtual-organization run.
struct VoJobStats {
  unsigned JobId = 0;
  Tick Arrival = 0;
  Tick Deadline = 0;
  /// The strategy had at least one feasible variant at arrival (Fig. 3a).
  bool Admissible = false;
  bool Committed = false;
  bool Rejected = false;
  /// Committed only after a reallocation (strategy went stale during
  /// negotiation and shifting could not recover it).
  bool Reallocated = false;
  /// Committed a time-shifted copy of a stale supporting schedule.
  bool ShiftRecovered = false;
  /// Ticks the committed schedule was shifted by (ShiftRecovered only).
  Tick CommitShift = 0;
  /// The committed variant differs from the one forecast at arrival.
  bool Switched = false;
  Tick ForecastStart = 0;
  Tick ActualStart = 0;
  Tick Completion = 0;
  /// Quota units paid for the committed schedule.
  double Cost = 0.0;
  /// The paper's cost function CF of the committed schedule.
  int64_t Cf = 0;
  /// Actual completion when execution-with-deviations is enabled
  /// (0 = not executed).
  Tick ActualCompletion = 0;
  /// The execution overran a wall limit and was killed.
  bool ExecutionKilled = false;
  /// Time-to-live of the arrival-time strategy (Fig. 4c).
  Tick Ttl = 0;
  bool TtlClosed = false;
  size_t Collisions = 0;

  /// Wall time from actual start to completion.
  Tick runTicks() const { return Completion - ActualStart; }
  /// |actual - forecast| start deviation.
  Tick startDeviation() const {
    Tick D = ActualStart - ForecastStart;
    return D < 0 ? -D : D;
  }
};

/// Manages the lifecycle of the jobs of one flow.
class JobManager {
public:
  /// \p FlowId tags this flow's journal events (multi-flow runs number
  /// their flows; -1 = unlabelled single flow).
  JobManager(Metascheduler &Meta, unsigned UserId, int FlowId = -1)
      : Meta(Meta), UserId(UserId), FlowId(FlowId) {}

  /// Enables execution with runtime deviations: every committed
  /// schedule is run through the execution engine and its actual
  /// completion (or wall-limit kill) recorded. Each job's deviations
  /// draw from a Prng derived from (\p SeedBase, job id), so they are
  /// identical at any shard count and independent of commit order.
  void enableExecution(const ExecutionConfig &Config, uint64_t SeedBase) {
    Exec = Config;
    ExecSeed = SeedBase;
    ExecEnabled = true;
  }

  /// The parallel half of a batched admission: the strategy build (the
  /// expensive part of onArrival), safe to run concurrently with other
  /// prepares — it reads the shared grid only and defers its journal
  /// events into the returned capture buffer. finishArrival() applies
  /// the result serially.
  struct PreparedArrival {
    Job TheJob;
    Strategy S;
    /// Arrival + build events captured during prepare, replayed ahead
    /// of the admission verdict so the journal order matches a serial
    /// run.
    obs::JournalBuffer Events;
  };
  PreparedArrival prepareArrival(const Job &J, Tick Now);

  /// The serial half of a batched admission: records admissibility and
  /// the start forecast, indexes the strategy. Call in canonical
  /// (ascending job id) order. Returns true when admissible (the
  /// caller then schedules a negotiation event).
  bool finishArrival(PreparedArrival &&P, Tick Now);

  /// A job entered the flow: build its strategy, record admissibility
  /// and the start forecast. Returns true when admissible (the caller
  /// then schedules a negotiation event). Equivalent to
  /// prepareArrival() + finishArrival() back to back.
  bool onArrival(const Job &J, Tick Now);

  /// onNegotiation's \p PickHint when no tender was pre-evaluated:
  /// evaluate inline.
  static constexpr size_t NoPickHint = static_cast<size_t>(-1);
  /// prepareNegotiation's verdict when no variant fit the snapshot.
  static constexpr size_t PickNone = static_cast<size_t>(-2);

  /// The parallel half of a batched negotiation: evaluates the tender
  /// — the index of the cheapest variant still fitting the current
  /// grid — from the tick-start snapshot. Read-only and safe to run
  /// concurrently with other prepares. Because reservations are only
  /// ever *added* while a batch drains, a snapshot pick that still
  /// fits at apply time is exactly the pick a serial evaluation would
  /// make (see onNegotiation), and a PickNone verdict can never
  /// un-stick. Returns PickNone when nothing fits.
  size_t prepareNegotiation(unsigned JobId) const;

  /// Negotiation concluded: commit the cheapest still-fitting variant,
  /// after one reallocation attempt if the strategy went stale. A
  /// \p PickHint from prepareNegotiation() is re-validated against the
  /// live grid and only trusted while it still fits. Returns the
  /// completion time on success.
  std::optional<Tick> onNegotiation(unsigned JobId, Tick Now,
                                    size_t PickHint = NoPickHint);

  /// Selects how onEnvironmentChange finds broken strategies. Must be
  /// set before the first arrival (the slot index is maintained from
  /// admission on). Default: Index.
  void setInvalidationMode(InvalidationMode M) { Mode = M; }
  InvalidationMode invalidationMode() const { return Mode; }

  /// The environment changed: close the TTL of strategies that no
  /// longer hold any fitting variant.
  void onEnvironmentChange(Tick Now);

  /// The job's last reservation ended: close bookkeeping.
  void onCompletion(unsigned JobId, Tick Now);

  const std::vector<VoJobStats> &stats() const { return Stats; }
  std::vector<VoJobStats> takeStats() { return std::move(Stats); }

  /// Jobs still tracked (uncommitted or TTL-open).
  size_t activeCount() const { return Active.size(); }

  /// Admissible jobs still negotiating (no committed schedule yet) —
  /// the telemetry sampler's per-flow "queued" series.
  size_t queuedCount() const;

  /// Committed jobs whose completion has not fired yet — the sampler's
  /// per-flow "in_flight" series.
  size_t inFlightCount() const;

private:
  struct ActiveJob {
    Job TheJob;
    Strategy S;
    size_t StatsIdx;
    /// Index of the variant forecast at arrival, SIZE_MAX if none.
    size_t ForecastVariant;
    bool Committed = false;
    bool Done = false;
    /// Feasible variants not yet confirmed broken by an environment
    /// change (index mode; the strategy is stale when this hits 0).
    size_t LiveFeasible = 0;
  };

  VoJobStats &statsOf(ActiveJob &A) { return Stats[A.StatsIdx]; }
  void maybeRetire(unsigned JobId);

  /// Registers every feasible placement of \p A's strategy under
  /// \p JobId in the slot index and seeds its live-variant count
  /// (index mode only).
  void indexJob(unsigned JobId, ActiveJob &A);
  /// Drops \p JobId from the slot index (no-op when untracked).
  void deindexJob(unsigned JobId);
  /// The invalidation tail shared by both passes: closes the TTL,
  /// counts, journals and de-indexes.
  void invalidateJob(unsigned JobId, ActiveJob &A, Tick Now);
  /// Scan-mode re-validation of one TTL-open strategy. Returns the
  /// placements examined.
  uint64_t revalidate(unsigned JobId, ActiveJob &A, Tick Now);

  /// Runs the committed distribution when execution is enabled.
  void runExecution(ActiveJob &A, const Distribution &D, Tick Now);

  Metascheduler &Meta;
  unsigned UserId;
  int FlowId = -1;
  bool ExecEnabled = false;
  ExecutionConfig Exec;
  uint64_t ExecSeed = 0;
  std::unordered_map<unsigned, ActiveJob> Active;
  std::vector<VoJobStats> Stats;
  InvalidationMode Mode = InvalidationMode::Index;
  /// Reserved slots of this flow's open (uncommitted, TTL-open)
  /// strategies, for intersection with environment changes.
  SlotIndex Index;
  /// This manager's cursor into the metascheduler's env-change log
  /// (sharded runs: one cursor per (flow, shard) manager).
  EnvLogCursor LogCursor;
};

} // namespace cws

#endif // CWS_FLOW_JOBMANAGER_H
