//===-- flow/Dispatch.cpp - Job-flow distribution across domains ----------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "flow/Dispatch.h"
#include "obs/Journal.h"
#include "obs/Metrics.h"
#include "obs/TimeSeries.h"
#include "obs/Trace.h"
#include "support/Check.h"
#include "support/ThreadPool.h"

#include <limits>
#include <optional>
#include <vector>

using namespace cws;

const char *cws::dispatchPolicyName(DispatchPolicy Policy) {
  switch (Policy) {
  case DispatchPolicy::RoundRobin:
    return "round-robin";
  case DispatchPolicy::LeastLoaded:
    return "least-loaded";
  case DispatchPolicy::LeastForecast:
    return "least-forecast";
  case DispatchPolicy::CheapestBid:
    return "cheapest-bid";
  }
  CWS_UNREACHABLE("unknown dispatch policy");
}

DomainDispatcher::DomainDispatcher(Grid &Env, const Network &Net,
                                   StrategyConfig Config,
                                   std::vector<Domain> Domains,
                                   DispatchPolicy Policy)
    : Env(Env), Net(Net), Config(std::move(Config)),
      Domains(std::move(Domains)), Policy(Policy), Forecaster(Env.size()) {
  CWS_CHECK(!this->Domains.empty(), "dispatcher needs domains");
  for (const auto &D : this->Domains)
    CWS_CHECK(!D.NodeIds.empty(), "dispatcher domains must be non-empty");
}

Strategy DomainDispatcher::buildOn(const Job &J, const Domain &D,
                                   OwnerId Owner, Tick Now) const {
  StrategyConfig Restricted = Config;
  Restricted.AllowedNodes = D.NodeIds;
  return Strategy::build(J, Env, Net, Restricted, Owner, Now);
}

void DomainDispatcher::observeLoad(Tick Now, Tick Window) {
  Forecaster.observe(Env, Now > Window ? Now - Window : 0,
                     std::max<Tick>(Now, 1));
}

DispatchDecision DomainDispatcher::dispatch(const Job &J, OwnerId Owner,
                                            Tick Now) {
  static obs::Counter &Dispatches = obs::Registry::global().counter(
      "cws_dispatch_total", "jobs routed to a domain by the dispatcher");
  Dispatches.add();
  obs::Span DispatchSpan("flow", "dispatch", "job",
                         static_cast<int64_t>(J.id()));
  DispatchDecision Decision;
  switch (Policy) {
  case DispatchPolicy::RoundRobin:
    Decision.DomainIdx = NextRoundRobin;
    NextRoundRobin = (NextRoundRobin + 1) % Domains.size();
    break;

  case DispatchPolicy::LeastLoaded: {
    double Best = std::numeric_limits<double>::max();
    for (size_t I = 0; I < Domains.size(); ++I) {
      double Load = domainBookedLoad(Env, Domains[I], Now,
                                     std::max(J.deadline(), Now + 1));
      if (Load < Best) {
        Best = Load;
        Decision.DomainIdx = I;
      }
    }
    break;
  }

  case DispatchPolicy::LeastForecast: {
    double Best = std::numeric_limits<double>::max();
    for (size_t I = 0; I < Domains.size(); ++I) {
      double Load = Forecaster.domainForecast(Domains[I]);
      if (Load < Best) {
        Best = Load;
        Decision.DomainIdx = I;
      }
    }
    break;
  }

  case DispatchPolicy::CheapestBid: {
    // Economic tender: every node manager offers its cheapest
    // admissible supporting schedule; the metascheduler takes the
    // lowest bid. The winner's strategy is reused, so losing domains
    // cost only their generation time. The bids are independent
    // read-only builds against disjoint node domains, so they run in
    // parallel; each domain journals into a capture buffer replayed in
    // domain order, and the serial lowest-bid fold below keeps the
    // decision identical to the serial loop it replaces.
    std::vector<std::optional<Strategy>> Built(Domains.size());
    std::vector<obs::JournalBuffer> Buffers(Domains.size());
    obs::Journal &Jn = obs::Journal::global();
    ThreadPool::global().parallelFor(Domains.size(), [&](size_t I) {
      obs::JournalCaptureScope Capture(Jn, &Buffers[I]);
      Built[I].emplace(buildOn(J, Domains[I], Owner, Now));
    });
    double BestBid = std::numeric_limits<double>::max();
    std::optional<Strategy> Winner;
    for (size_t I = 0; I < Domains.size(); ++I) {
      Jn.appendBuffered(Buffers[I]);
      Strategy S = std::move(*Built[I]);
      double Bid = std::numeric_limits<double>::infinity();
      if (const ScheduleVariant *Best = S.bestByCost())
        Bid = Best->Result.Dist.economicCost();
      Decision.Bids.push_back(Bid);
      if (Bid < BestBid) {
        BestBid = Bid;
        Decision.DomainIdx = I;
        Winner = std::move(S);
      }
    }
    if (Winner) {
      Decision.S = std::move(*Winner);
      DispatchSpan.arg("domain",
                       static_cast<int64_t>(Decision.DomainIdx));
      journalDecision(J, Decision, Now);
      return Decision;
    }
    // No admissible bid anywhere: return the first domain's strategy
    // so the caller still sees the (inadmissible) result.
    Decision.DomainIdx = 0;
    break;
  }
  }

  Decision.S = buildOn(J, Domains[Decision.DomainIdx], Owner, Now);
  DispatchSpan.arg("domain", static_cast<int64_t>(Decision.DomainIdx));
  journalDecision(J, Decision, Now);
  return Decision;
}

void DomainDispatcher::journalDecision(const Job &J,
                                       const DispatchDecision &Decision,
                                       Tick Now) const {
  obs::TimeSeries::global().sampleEvent(Now, "dispatch");
  obs::Journal &Jn = obs::Journal::global();
  if (Jn.enabled())
    Jn.append(obs::JournalKind::Dispatch, J.id(), Now,
              {{"domain", static_cast<int64_t>(Decision.DomainIdx)},
               {"bids", static_cast<int64_t>(Decision.Bids.size())}},
              dispatchPolicyName(Policy));
}
