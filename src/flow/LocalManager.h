//===-- flow/LocalManager.h - Local batch management ------------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The local batch-job management system of one domain — Fig. 1's
/// bottom layer and the subject of Section 5's "simulation approach of
/// local job passing": it owns admission to its nodes' timelines. The
/// metascheduler asks it for advance reservations (the placements of a
/// committed distribution); local users submit single-node jobs that
/// are placed according to the local queue policy. The policy choice is
/// what the paper's future work asks about: how does local queue
/// management interact with the QoS of the global job flows?
///
//===----------------------------------------------------------------------===//

#ifndef CWS_FLOW_LOCALMANAGER_H
#define CWS_FLOW_LOCALMANAGER_H

#include "flow/Domain.h"
#include "resource/Grid.h"
#include "sim/Time.h"

#include <cstddef>
#include <optional>

namespace cws {

/// How a local manager places the jobs of its own users.
enum class LocalQueuePolicy {
  /// Every job books the earliest gap on the best node immediately —
  /// aggressive gap filling (EASY-backfill-like for single-node jobs).
  Immediate,
  /// Strict FCFS: a job never starts before the job submitted before it
  /// (no jumping into earlier gaps), which leaves holes unused.
  StrictFcfs,
};

/// Short name ("immediate" / "strict-fcfs").
const char *localQueuePolicyName(LocalQueuePolicy Policy);

/// One booked local job.
struct LocalPlacement {
  unsigned NodeId;
  Tick Start;
  Tick End;
};

/// Local batch manager of one domain.
class LocalManager {
public:
  /// \p MaxLookahead: a local job whose earliest start lies further
  /// than this beyond its submission is rejected ("queue full").
  LocalManager(Grid &Env, Domain D, LocalQueuePolicy Policy,
               Tick MaxLookahead = 400);

  /// Metascheduler-side advance reservation on a specific node; fails
  /// when the node is outside this domain or the slot is taken.
  bool reserveAdvance(unsigned NodeId, Tick Begin, Tick End, OwnerId Owner);

  /// Local-user submission at \p Now for \p Dur ticks on one node.
  /// Returns the booked placement, or std::nullopt when rejected.
  std::optional<LocalPlacement> submitLocal(Tick Now, Tick Dur,
                                            OwnerId Owner);

  const Domain &domain() const { return D; }
  LocalQueuePolicy policy() const { return Policy; }

  /// Aggregate statistics over the local submissions so far.
  size_t placed() const { return Placed; }
  size_t rejected() const { return Rejected; }
  double meanLocalWait() const {
    return Placed ? TotalWait / static_cast<double>(Placed) : 0.0;
  }

private:
  Grid &Env;
  Domain D;
  LocalQueuePolicy Policy;
  Tick MaxLookahead;
  /// StrictFcfs: no later submission may start before this.
  Tick QueueFront = 0;
  size_t Placed = 0;
  size_t Rejected = 0;
  double TotalWait = 0.0;
};

} // namespace cws

#endif // CWS_FLOW_LOCALMANAGER_H
