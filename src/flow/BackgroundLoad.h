//===-- flow/BackgroundLoad.h - Independent local job flows -----*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The independent local job flows that make the environment dynamic:
/// every processor node keeps receiving jobs from its own local users,
/// eating free slots over time. Faster nodes are more demanded, so the
/// per-node arrival gap depends on the performance group — this is what
/// ages strategies (their time-to-live) and forces supporting-schedule
/// switches.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_FLOW_BACKGROUNDLOAD_H
#define CWS_FLOW_BACKGROUNDLOAD_H

#include "resource/Grid.h"
#include "resource/SlotIndex.h"
#include "sim/Simulator.h"
#include "support/Prng.h"

#include <cstddef>
#include <functional>

namespace cws {

/// Arrival and duration model of the background flows.
struct BackgroundConfig {
  /// Mean gap between background jobs on one node, per group (fast
  /// nodes are the most demanded).
  Tick MeanGapFast = 10;
  Tick MeanGapMedium = 18;
  Tick MeanGapSlow = 30;
  /// Background job duration, uniform.
  Tick DurLo = 4;
  Tick DurHi = 24;
  /// A node whose next free slot is further away than this rejects the
  /// background job (its local queue is "full").
  Tick MaxLookahead = 400;
};

/// Owner id used for all background reservations.
inline constexpr OwnerId BackgroundOwner = 1;

/// Drives background arrivals on every node of a grid.
class BackgroundLoad {
public:
  /// \p Observer (optional) fires after every background arrival — the
  /// hook job managers use to re-validate their strategies.
  BackgroundLoad(Grid &Env, Simulator &Sim, BackgroundConfig Config,
                 Prng Rng);

  /// Starts per-node arrival processes until \p Until.
  void start(Tick Until);

  void setObserver(std::function<void(Tick)> Fn) { Observer = std::move(Fn); }

  /// When set, every placed background reservation is appended to
  /// \p Log before the observer fires, so index-mode managers know
  /// exactly which (node, interval) ranges this change touched.
  void setEnvChangeLog(EnvChangeLog *Log) { ChangeLog = Log; }

  /// Background jobs actually placed so far.
  size_t placed() const { return Placed; }

private:
  Tick meanGap(PerfGroup Group) const;
  void scheduleNext(unsigned NodeId, Tick Until);

  Grid &Env;
  Simulator &Sim;
  BackgroundConfig Config;
  Prng Rng;
  std::function<void(Tick)> Observer;
  EnvChangeLog *ChangeLog = nullptr;
  size_t Placed = 0;
};

} // namespace cws

#endif // CWS_FLOW_BACKGROUNDLOAD_H
