//===-- flow/Economy.cpp - Virtual organization economics -----------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "flow/Economy.h"
#include "obs/Profiler.h"
#include "support/Check.h"

#include <algorithm>

using namespace cws;

unsigned Economy::addUser(double Quota) {
  CWS_CHECK(Quota >= 0.0, "quota must be non-negative");
  Accounts.push_back({Quota, 0.0});
  return static_cast<unsigned>(Accounts.size() - 1);
}

const Economy::Account &Economy::account(unsigned User) const {
  CWS_CHECK(User < Accounts.size(), "unknown user");
  return Accounts[User];
}

double Economy::quota(unsigned User) const { return account(User).Quota; }

double Economy::spent(unsigned User) const { return account(User).Spent; }

double Economy::remaining(unsigned User) const {
  const Account &A = account(User);
  return std::max(0.0, A.Quota - A.Spent);
}

bool Economy::canAfford(unsigned User, double Cost) const {
  CWS_CHECK(Cost >= 0.0, "negative cost");
  return remaining(User) - pendingOf(User) + 1e-9 >= Cost;
}

bool Economy::charge(unsigned User, double Cost) {
  if (!canAfford(User, Cost))
    return false;
  if (ledgersOpen()) {
    CWS_CHECK(ActiveShard < Ledgers.size(), "active shard out of range");
    Ledgers[ActiveShard].push_back({User, ActiveJobId, Cost});
    return true;
  }
  Accounts[User].Spent += Cost;
  return true;
}

void Economy::beginLedgers(size_t Shards) {
  CWS_CHECK(Shards > 0, "need at least one ledger");
  mergeLedgers();
  Ledgers.assign(Shards, {});
  ActiveShard = 0;
  ActiveJobId = 0;
}

void Economy::setActiveShard(size_t Shard, unsigned JobId) {
  ActiveShard = Shard;
  ActiveJobId = JobId;
}

void Economy::mergeLedgers() {
  if (Ledgers.empty())
    return;
  obs::PhaseScope MergePhase("economy.merge");
  std::vector<LedgerEntry> All;
  for (auto &L : Ledgers) {
    All.insert(All.end(), L.begin(), L.end());
    L.clear();
  }
  // Ascending job id is the canonical fold order; ties (several charges
  // of one job, e.g. after a failed first attempt) keep ledger order,
  // which is recording order within the job's single owning shard.
  std::stable_sort(All.begin(), All.end(),
                   [](const LedgerEntry &A, const LedgerEntry &B) {
                     return A.JobId < B.JobId;
                   });
  for (const LedgerEntry &E : All)
    Accounts[E.User].Spent += E.Amount;
  MergePhase.work("entries", All.size());
}

double Economy::pendingOf(unsigned User) const {
  double Sum = 0.0;
  for (const auto &L : Ledgers)
    for (const LedgerEntry &E : L)
      if (E.User == User)
        Sum += E.Amount;
  return Sum;
}

void Economy::refund(unsigned User, double Amount) {
  CWS_CHECK(Amount >= 0.0, "negative refund");
  Accounts[User].Spent = std::max(0.0, account(User).Spent - Amount);
}

void Economy::grant(unsigned User, double Amount) {
  CWS_CHECK(Amount >= 0.0, "negative grant");
  Accounts[User].Quota += Amount;
}

double Economy::priority(unsigned User) const {
  double Mine = remaining(User);
  double Richest = 0.0;
  for (unsigned I = 0; I < Accounts.size(); ++I)
    Richest = std::max(Richest, remaining(I));
  return Richest > 0.0 ? Mine / Richest : 0.0;
}
