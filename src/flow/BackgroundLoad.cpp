//===-- flow/BackgroundLoad.cpp - Independent local job flows -------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "flow/BackgroundLoad.h"
#include "obs/Journal.h"
#include "obs/Metrics.h"
#include "obs/TimeSeries.h"
#include "support/Check.h"

using namespace cws;

BackgroundLoad::BackgroundLoad(Grid &Env, Simulator &Sim,
                               BackgroundConfig Config, Prng Rng)
    : Env(Env), Sim(Sim), Config(Config), Rng(Rng) {
  CWS_CHECK(Config.DurLo >= 1 && Config.DurLo <= Config.DurHi,
            "invalid background duration range");
  CWS_CHECK(Config.MeanGapFast >= 1 && Config.MeanGapMedium >= 1 &&
                Config.MeanGapSlow >= 1,
            "mean gaps must be positive");
}

Tick BackgroundLoad::meanGap(PerfGroup Group) const {
  switch (Group) {
  case PerfGroup::Fast:
    return Config.MeanGapFast;
  case PerfGroup::Medium:
    return Config.MeanGapMedium;
  case PerfGroup::Slow:
    return Config.MeanGapSlow;
  }
  CWS_UNREACHABLE("unknown performance group");
}

void BackgroundLoad::start(Tick Until) {
  for (const auto &N : Env.nodes())
    scheduleNext(N.id(), Until);
}

void BackgroundLoad::scheduleNext(unsigned NodeId, Tick Until) {
  Tick Mean = meanGap(Env.node(NodeId).group());
  Tick Gap = Rng.uniformInt(1, 2 * Mean - 1);
  Tick At = Sim.now() + Gap;
  if (At > Until)
    return;
  Sim.at(At, [this, NodeId, Until](Tick Now) {
    Tick Dur = Rng.uniformInt(Config.DurLo, Config.DurHi);
    Timeline &Line = Env.node(NodeId).timeline();
    Tick Start = Line.earliestFit(Now, Dur);
    if (Start - Now <= Config.MaxLookahead) {
      bool Ok = Line.reserve(Start, Start + Dur, BackgroundOwner);
      CWS_CHECK(Ok, "earliestFit returned an occupied slot");
      ++Placed;
      static obs::Counter &EnvChanges = obs::Registry::global().counter(
          "cws_env_changes_total",
          "background placements that changed the environment");
      EnvChanges.add();
      if (ChangeLog)
        ChangeLog->noteAdded(NodeId, Start, Start + Dur);
      // Journal the change before the observer runs: invalidations it
      // finds then auto-attribute their trigger to this event.
      obs::Journal &Jn = obs::Journal::global();
      if (Jn.enabled())
        Jn.append(obs::JournalKind::EnvChange, -1, Now,
                  {{"node", NodeId},
                   {"start", Start},
                   {"end", Start + Dur}},
                  "background");
      if (Observer)
        Observer(Now);
      // Sample after the observer so the frame records the fallout
      // (invalidations, TTL closes) the change just caused.
      obs::TimeSeries::global().sampleEvent(Now, "env.change");
    }
    scheduleNext(NodeId, Until);
  });
}
