//===-- flow/LocalManager.cpp - Local batch management --------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "flow/LocalManager.h"
#include "support/Check.h"

#include <limits>

using namespace cws;

const char *cws::localQueuePolicyName(LocalQueuePolicy Policy) {
  switch (Policy) {
  case LocalQueuePolicy::Immediate:
    return "immediate";
  case LocalQueuePolicy::StrictFcfs:
    return "strict-fcfs";
  }
  CWS_UNREACHABLE("unknown local queue policy");
}

LocalManager::LocalManager(Grid &Env, Domain D, LocalQueuePolicy Policy,
                           Tick MaxLookahead)
    : Env(Env), D(std::move(D)), Policy(Policy), MaxLookahead(MaxLookahead) {
  CWS_CHECK(!this->D.NodeIds.empty(), "local manager needs nodes");
  CWS_CHECK(MaxLookahead >= 0, "negative lookahead");
}

bool LocalManager::reserveAdvance(unsigned NodeId, Tick Begin, Tick End,
                                  OwnerId Owner) {
  if (!D.contains(NodeId))
    return false;
  return Env.node(NodeId).timeline().reserve(Begin, End, Owner);
}

std::optional<LocalPlacement> LocalManager::submitLocal(Tick Now, Tick Dur,
                                                        OwnerId Owner) {
  CWS_CHECK(Dur > 0, "local job needs a positive duration");
  Tick NotBefore = Now;
  if (Policy == LocalQueuePolicy::StrictFcfs)
    NotBefore = std::max(NotBefore, QueueFront);

  // Best node: the earliest start across the domain; ties go to the
  // first node in the domain order.
  unsigned BestNode = 0;
  Tick BestStart = std::numeric_limits<Tick>::max();
  for (unsigned NodeId : D.NodeIds) {
    Tick Start = Env.node(NodeId).timeline().earliestFit(NotBefore, Dur);
    if (Start < BestStart) {
      BestStart = Start;
      BestNode = NodeId;
    }
  }
  if (BestStart - Now > MaxLookahead) {
    ++Rejected;
    return std::nullopt;
  }
  bool Ok = Env.node(BestNode).timeline().reserve(BestStart, BestStart + Dur,
                                                  Owner);
  CWS_CHECK(Ok, "earliestFit returned an occupied slot");
  if (Policy == LocalQueuePolicy::StrictFcfs)
    QueueFront = std::max(QueueFront, BestStart);
  ++Placed;
  TotalWait += static_cast<double>(BestStart - Now);
  return LocalPlacement{BestNode, BestStart, BestStart + Dur};
}
