//===-- flow/Metascheduler.h - Job-flow metascheduler -----------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metascheduler at the top of the hierarchical framework (Fig. 1):
/// it builds strategies for incoming jobs against the current
/// environment, owns the owner-id space that ties reservations to jobs,
/// commits chosen supporting schedules (charging the quota economy) and
/// serves reallocation requests when a job's strategy goes stale.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_FLOW_METASCHEDULER_H
#define CWS_FLOW_METASCHEDULER_H

#include "core/Strategy.h"
#include "flow/Economy.h"
#include "job/Job.h"
#include "resource/Grid.h"
#include "resource/Network.h"
#include "resource/SlotIndex.h"

namespace cws {

/// First owner id handed to compound jobs; background load and other
/// reserved owners live below it.
inline constexpr OwnerId JobOwnerBase = 1000;

/// Top-level dispatcher of the scheduling framework.
class Metascheduler {
public:
  Metascheduler(Grid &Env, const Network &Net, Economy &Econ,
                StrategyConfig Config)
      : Env(Env), Net(Net), Econ(Econ), Config(Config) {}

  /// Owner id a job's reservations use. Pure in the job id: owner ids
  /// appear in journals and timelines, so they must not depend on the
  /// shard count (the byte-identical-journal bar). Sharded runs
  /// partition the id space *below* this mapping instead — see
  /// shardOfJob.
  static OwnerId ownerOf(unsigned JobId) { return JobOwnerBase + JobId; }

  /// The worker shard that owns \p JobId when the flow level runs with
  /// \p Shards shards. Shard S's owner-id allocation range is the
  /// arithmetic stripe { JobOwnerBase + S + k * Shards : k >= 0 } —
  /// ranges of distinct shards are disjoint, their union covers every
  /// job owner id, and a job's owner id is the same at every shard
  /// count (only *which shard allocates it* changes).
  static size_t shardOfJob(unsigned JobId, size_t Shards) {
    return Shards > 1 ? JobId % Shards : 0;
  }

  /// Maps a job owner id back to its owning shard; \p Owner must be
  /// >= JobOwnerBase.
  static size_t shardOfOwner(OwnerId Owner, size_t Shards) {
    return shardOfJob(static_cast<unsigned>(Owner - JobOwnerBase), Shards);
  }

  /// Builds the flow's strategy for \p J against the current load.
  Strategy buildStrategy(const Job &J, Tick Now) const {
    return Strategy::build(J, Env, Net, Config, ownerOf(J.id()), Now);
  }

  /// Commits \p Variant's distribution for \p J if user \p UserId can
  /// pay and every slot is still free; charges the economy on success.
  /// \p Now is the decision tick (journaled, not used for scheduling).
  bool commit(const Job &J, const ScheduleVariant &Variant, unsigned UserId,
              Tick Now = 0);

  /// Commits an explicit distribution (e.g. a shifted supporting
  /// schedule produced by the negotiation layer) under the same rules.
  bool commitDistribution(const Job &J, const Distribution &D,
                          unsigned UserId, Tick Now = 0);

  /// Reallocation: drops any reservations \p J holds and rebuilds its
  /// strategy from the current environment state.
  Strategy reallocate(const Job &J, Tick Now);

  Grid &grid() { return Env; }
  const Grid &grid() const { return Env; }
  const StrategyConfig &strategyConfig() const { return Config; }

  /// When set, every successfully committed placement is appended to
  /// \p Log: a commit occupies slots other flows' open strategies may
  /// have planned on, so index-mode managers treat it like any other
  /// environment change at their next intersection pass.
  void setEnvChangeLog(EnvChangeLog *Log) { ChangeLog = Log; }
  EnvChangeLog *envChangeLog() const { return ChangeLog; }

private:
  Grid &Env;
  const Network &Net;
  Economy &Econ;
  StrategyConfig Config;
  EnvChangeLog *ChangeLog = nullptr;
};

} // namespace cws

#endif // CWS_FLOW_METASCHEDULER_H
