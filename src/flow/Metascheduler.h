//===-- flow/Metascheduler.h - Job-flow metascheduler -----------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metascheduler at the top of the hierarchical framework (Fig. 1):
/// it builds strategies for incoming jobs against the current
/// environment, owns the owner-id space that ties reservations to jobs,
/// commits chosen supporting schedules (charging the quota economy) and
/// serves reallocation requests when a job's strategy goes stale.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_FLOW_METASCHEDULER_H
#define CWS_FLOW_METASCHEDULER_H

#include "core/Repair.h"
#include "core/Strategy.h"
#include "flow/Economy.h"
#include "job/Job.h"
#include "resource/Grid.h"
#include "resource/Network.h"
#include "resource/SlotIndex.h"

namespace cws {

/// How the metascheduler serves a reallocation request.
enum class ReallocationMode {
  /// Unconditional full rebuild — the pre-repair behavior, kept as the
  /// differential oracle behind `--reallocation=rebuild`.
  Rebuild,
  /// Escalating staged repair: single-slot shift, then partial chain-DP
  /// re-run, then the full rebuild (the default).
  Repair,
};

/// Short name ("rebuild" / "repair") — the CLI and canonical-config
/// vocabulary.
const char *reallocationModeName(ReallocationMode M);

/// Outcome of one reallocation request: the replacement strategy plus
/// the stage that produced it. Stage Failed means even the rebuild came
/// back inadmissible — the strategy is not admissible and the caller
/// keeps the old one (its reservations were left untouched).
struct ReallocationResult {
  Strategy S;
  RepairStage Stage = RepairStage::Failed;
  bool admissible() const { return S.admissible(); }
};

/// Tallies of the repair differential oracle: with the oracle enabled,
/// every staged repair is checked against the full rebuild it replaced.
struct RepairOracleStats {
  /// Staged repairs compared against a reference rebuild.
  uint64_t Checked = 0;
  /// Repaired best variant covers the job, fits the live grid and meets
  /// the deadline.
  uint64_t Feasible = 0;
  /// Repaired best variant is affordable under the user's quota.
  uint64_t Affordable = 0;
  /// Repaired best cost <= rebuilt best cost under the active (cost)
  /// bias, or the rebuild itself came back inadmissible.
  uint64_t NotWorse = 0;
  /// Summed best-variant economic costs of both sides (rebuild side
  /// only over checks where both sides were admissible).
  double RepairCost = 0, RebuildCost = 0;

  void accumulate(const RepairOracleStats &O) {
    Checked += O.Checked;
    Feasible += O.Feasible;
    Affordable += O.Affordable;
    NotWorse += O.NotWorse;
    RepairCost += O.RepairCost;
    RebuildCost += O.RebuildCost;
  }
};

/// First owner id handed to compound jobs; background load and other
/// reserved owners live below it.
inline constexpr OwnerId JobOwnerBase = 1000;

/// Top-level dispatcher of the scheduling framework.
class Metascheduler {
public:
  Metascheduler(Grid &Env, const Network &Net, Economy &Econ,
                StrategyConfig Config)
      : Env(Env), Net(Net), Econ(Econ), Config(Config) {}

  /// Owner id a job's reservations use. Pure in the job id: owner ids
  /// appear in journals and timelines, so they must not depend on the
  /// shard count (the byte-identical-journal bar). Sharded runs
  /// partition the id space *below* this mapping instead — see
  /// shardOfJob.
  static OwnerId ownerOf(unsigned JobId) { return JobOwnerBase + JobId; }

  /// The worker shard that owns \p JobId when the flow level runs with
  /// \p Shards shards. Shard S's owner-id allocation range is the
  /// arithmetic stripe { JobOwnerBase + S + k * Shards : k >= 0 } —
  /// ranges of distinct shards are disjoint, their union covers every
  /// job owner id, and a job's owner id is the same at every shard
  /// count (only *which shard allocates it* changes).
  static size_t shardOfJob(unsigned JobId, size_t Shards) {
    return Shards > 1 ? JobId % Shards : 0;
  }

  /// Maps a job owner id back to its owning shard; \p Owner must be
  /// >= JobOwnerBase.
  static size_t shardOfOwner(OwnerId Owner, size_t Shards) {
    return shardOfJob(static_cast<unsigned>(Owner - JobOwnerBase), Shards);
  }

  /// Builds the flow's strategy for \p J against the current load.
  Strategy buildStrategy(const Job &J, Tick Now) const {
    return Strategy::build(J, Env, Net, Config, ownerOf(J.id()), Now);
  }

  /// Commits \p Variant's distribution for \p J if user \p UserId can
  /// pay and every slot is still free; charges the economy on success.
  /// \p Now is the decision tick (journaled, not used for scheduling).
  bool commit(const Job &J, const ScheduleVariant &Variant, unsigned UserId,
              Tick Now = 0);

  /// Commits an explicit distribution (e.g. a shifted supporting
  /// schedule produced by the negotiation layer) under the same rules.
  bool commitDistribution(const Job &J, const Distribution &D,
                          unsigned UserId, Tick Now = 0);

  /// Reallocation: replaces \p J's stale strategy \p Stale. In repair
  /// mode the stages escalate — shift the one broken reservation,
  /// re-run the DP for the broken critical works, full rebuild; in
  /// rebuild mode the rebuild runs unconditionally. Build-then-swap:
  /// reservations \p J holds are released only once an admissible
  /// replacement exists, so a failed reallocation leaves the old state
  /// intact. \p UserId is the paying user (repairs must stay within
  /// quota).
  ReallocationResult reallocate(const Job &J, const Strategy &Stale,
                                unsigned UserId, Tick Now);

  ReallocationMode reallocationMode() const { return ReallocMode; }
  void setReallocationMode(ReallocationMode M) { ReallocMode = M; }

  /// Toggles the repair differential oracle: every staged repair is
  /// re-derived by a side-effect-free reference rebuild and compared.
  /// Diagnostic-priced; the check never changes the run's trajectory.
  void setRepairOracle(bool Enabled) { OracleEnabled = Enabled; }
  const RepairOracleStats &repairOracle() const { return Oracle; }

  Grid &grid() { return Env; }
  const Grid &grid() const { return Env; }
  const StrategyConfig &strategyConfig() const { return Config; }

  /// When set, every successfully committed placement is appended to
  /// \p Log: a commit occupies slots other flows' open strategies may
  /// have planned on, so index-mode managers treat it like any other
  /// environment change at their next intersection pass.
  void setEnvChangeLog(EnvChangeLog *Log) { ChangeLog = Log; }
  EnvChangeLog *envChangeLog() const { return ChangeLog; }

private:
  /// Compares one staged repair against a reference rebuild (journal
  /// events swallowed, grid copied) and tallies into Oracle.
  void checkRepairOracle(const Job &J, const Strategy &Repaired,
                         unsigned UserId, OwnerId Owner, Tick Now);

  Grid &Env;
  const Network &Net;
  Economy &Econ;
  StrategyConfig Config;
  EnvChangeLog *ChangeLog = nullptr;
  ReallocationMode ReallocMode = ReallocationMode::Repair;
  bool OracleEnabled = false;
  RepairOracleStats Oracle;
};

} // namespace cws

#endif // CWS_FLOW_METASCHEDULER_H
