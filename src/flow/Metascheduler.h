//===-- flow/Metascheduler.h - Job-flow metascheduler -----------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metascheduler at the top of the hierarchical framework (Fig. 1):
/// it builds strategies for incoming jobs against the current
/// environment, owns the owner-id space that ties reservations to jobs,
/// commits chosen supporting schedules (charging the quota economy) and
/// serves reallocation requests when a job's strategy goes stale.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_FLOW_METASCHEDULER_H
#define CWS_FLOW_METASCHEDULER_H

#include "core/Strategy.h"
#include "flow/Economy.h"
#include "job/Job.h"
#include "resource/Grid.h"
#include "resource/Network.h"
#include "resource/SlotIndex.h"

namespace cws {

/// First owner id handed to compound jobs; background load and other
/// reserved owners live below it.
inline constexpr OwnerId JobOwnerBase = 1000;

/// Top-level dispatcher of the scheduling framework.
class Metascheduler {
public:
  Metascheduler(Grid &Env, const Network &Net, Economy &Econ,
                StrategyConfig Config)
      : Env(Env), Net(Net), Econ(Econ), Config(Config) {}

  /// Owner id a job's reservations use.
  static OwnerId ownerOf(unsigned JobId) { return JobOwnerBase + JobId; }

  /// Builds the flow's strategy for \p J against the current load.
  Strategy buildStrategy(const Job &J, Tick Now) const {
    return Strategy::build(J, Env, Net, Config, ownerOf(J.id()), Now);
  }

  /// Commits \p Variant's distribution for \p J if user \p UserId can
  /// pay and every slot is still free; charges the economy on success.
  /// \p Now is the decision tick (journaled, not used for scheduling).
  bool commit(const Job &J, const ScheduleVariant &Variant, unsigned UserId,
              Tick Now = 0);

  /// Commits an explicit distribution (e.g. a shifted supporting
  /// schedule produced by the negotiation layer) under the same rules.
  bool commitDistribution(const Job &J, const Distribution &D,
                          unsigned UserId, Tick Now = 0);

  /// Reallocation: drops any reservations \p J holds and rebuilds its
  /// strategy from the current environment state.
  Strategy reallocate(const Job &J, Tick Now);

  Grid &grid() { return Env; }
  const Grid &grid() const { return Env; }
  const StrategyConfig &strategyConfig() const { return Config; }

  /// When set, every successfully committed placement is appended to
  /// \p Log: a commit occupies slots other flows' open strategies may
  /// have planned on, so index-mode managers treat it like any other
  /// environment change at their next intersection pass.
  void setEnvChangeLog(EnvChangeLog *Log) { ChangeLog = Log; }
  EnvChangeLog *envChangeLog() const { return ChangeLog; }

private:
  Grid &Env;
  const Network &Net;
  Economy &Econ;
  StrategyConfig Config;
  EnvChangeLog *ChangeLog = nullptr;
};

} // namespace cws

#endif // CWS_FLOW_METASCHEDULER_H
