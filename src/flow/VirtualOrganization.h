//===-- flow/VirtualOrganization.h - Two-level VO simulation ----*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The coordinated two-level simulation of Section 4: a stream of
/// compound jobs flows through the metascheduler and a job manager while
/// independent background flows keep loading the nodes. This harness
/// produces every Fig. 4 QoS factor: per-group load levels, job cost,
/// task execution time, strategy time-to-live and start-time deviation.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_FLOW_VIRTUALORGANIZATION_H
#define CWS_FLOW_VIRTUALORGANIZATION_H

#include "core/Strategy.h"
#include "flow/BackgroundLoad.h"
#include "flow/JobManager.h"
#include "job/Generator.h"
#include "resource/Grid.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cws {

/// Parameters of one virtual-organization run.
struct VoConfig {
  GridConfig GridCfg;
  WorkloadConfig Workload;
  /// Strategy generation parameters; Kind is overridden per run.
  StrategyConfig Strategy;
  BackgroundConfig Background;
  /// Compound jobs in the flow.
  size_t JobCount = 200;
  /// Interarrival gap between compound jobs, uniform.
  Tick InterarrivalLo = 10;
  Tick InterarrivalHi = 40;
  /// Delay between strategy generation and commitment (resource
  /// negotiation with the local systems), uniform.
  Tick NegotiationLo = 4;
  Tick NegotiationHi = 16;
  /// Quota of the flow's user account.
  double UserQuota = 1e12;
  /// When true, committed schedules are executed under runtime
  /// deviations (Execution) and actual completions / wall-limit kills
  /// are recorded in the per-job stats.
  bool ExecuteWithDeviations = false;
  ExecutionConfig Execution;
  /// How the job managers find strategies an environment change broke:
  /// the event-driven slot-index pass (default) or the full scan (the
  /// differential-testing oracle behind --invalidation=scan).
  InvalidationMode Invalidation = InvalidationMode::Index;
  /// How the metascheduler serves reallocations: the escalating staged
  /// repair (default) or the unconditional full rebuild (the
  /// differential oracle behind --reallocation=rebuild).
  ReallocationMode Reallocation = ReallocationMode::Repair;
  /// When true, every staged repair is re-derived by a reference
  /// rebuild and compared (VoRunResult::RepairOracle). Diagnostic-
  /// priced and side-effect-free: deliberately excluded from
  /// voConfigCanonical, like the journal toggle.
  bool RepairOracle = false;
  /// Worker shards of the job-flow level: each flow's jobs are
  /// partitioned across this many job managers (job id mod shards) and
  /// per-tick admission / negotiation batches run their expensive
  /// halves concurrently, one lane per shard. 0 = resolve from the
  /// CWS_SHARDS environment variable (1 when unset). Results are
  /// byte-identical at any value — see resolveShardCount.
  size_t Shards = 0;
};

/// Effective shard count: \p Configured when positive, else the
/// CWS_SHARDS environment variable when it parses to a positive
/// integer, else 1; capped at 64 (the thread-pool's lane cap). The
/// count only changes *who computes what in parallel* — journals,
/// per-job stats and load attribution are byte-identical at any value,
/// pinned by tests and the meta_shard_scaling bench.
size_t resolveShardCount(size_t Configured);

/// Result of one run.
struct VoRunResult {
  StrategyKind Kind = StrategyKind::S1;
  std::vector<VoJobStats> Jobs;
  /// Node utilization by committed compound jobs, percent, indexed by
  /// PerfGroup (Fast, Medium, Slow).
  double JobLoadPercent[3] = {0, 0, 0};
  /// Node utilization by background flows, percent, same indexing.
  double BackgroundLoadPercent[3] = {0, 0, 0};
  Tick Horizon = 0;
  size_t BackgroundJobs = 0;
  /// Aggregated repair-oracle tallies of every flow's metascheduler
  /// (all zero unless VoConfig::RepairOracle was set).
  RepairOracleStats RepairOracle;
};

/// Runs the whole simulation for one strategy type.
VoRunResult runVirtualOrganization(const VoConfig &Config, StrategyKind Kind,
                                   uint64_t Seed);

/// Canonical one-line text of every scheduling-relevant field of
/// \p Config plus the strategy \p Kind, `key=value` pairs in a fixed
/// order. Two runs with equal canonical text simulate the same
/// configuration; `cws-sim` and `cws-sweep` hash this text (see
/// `obs::configHashOf`) to verify that pooled runs really belong to one
/// scenario. The seed is deliberately excluded — seed replicas of a
/// scenario share the hash.
std::string voConfigCanonical(const VoConfig &Config, StrategyKind Kind);

/// Runs several *competing* flows in one virtual organization: jobs of
/// the shared arrival stream are dealt round-robin to one flow per
/// strategy type, so the flows intersect on the same nodes (Fig. 1's
/// flows i, j, k). Returns one result per flow, in \p Kinds order;
/// JobLoadPercent is attributed per flow.
std::vector<VoRunResult> runMultiFlowVo(const VoConfig &Config,
                                        const std::vector<StrategyKind> &Kinds,
                                        uint64_t Seed);

} // namespace cws

#endif // CWS_FLOW_VIRTUALORGANIZATION_H
