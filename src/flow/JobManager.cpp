//===-- flow/JobManager.cpp - Per-flow job managers -----------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "flow/JobManager.h"
#include "core/Shift.h"
#include "support/Check.h"

using namespace cws;

bool JobManager::onArrival(const Job &J, Tick Now) {
  Strategy S = Meta.buildStrategy(J, Now);

  VoJobStats St;
  St.JobId = J.id();
  St.Arrival = Now;
  St.Deadline = J.deadline();
  St.Admissible = S.admissible();

  size_t ForecastVariant = SIZE_MAX;
  if (const ScheduleVariant *Best = S.bestByCost()) {
    St.ForecastStart = Best->Result.Dist.startTime();
    St.Collisions = Best->Result.Collisions.size();
    ForecastVariant = static_cast<size_t>(Best - S.variants().data());
  }
  Stats.push_back(St);

  if (!St.Admissible) {
    // Nothing will ever run; the strategy was dead on arrival.
    Stats.back().TtlClosed = true;
    return false;
  }
  ActiveJob A{J, std::move(S), Stats.size() - 1, ForecastVariant};
  Active.emplace(J.id(), std::move(A));
  return true;
}

std::optional<Tick> JobManager::onNegotiation(unsigned JobId, Tick Now) {
  auto It = Active.find(JobId);
  CWS_CHECK(It != Active.end(), "negotiation for an unknown job");
  ActiveJob &A = It->second;
  VoJobStats &St = statsOf(A);
  OwnerId Owner = Metascheduler::ownerOf(JobId);

  const ScheduleVariant *Pick = A.S.bestFitting(Meta.grid(), Owner);
  if (!Pick) {
    // The whole arrival-time strategy went stale during negotiation:
    // close its TTL.
    if (!St.TtlClosed) {
      St.Ttl = Now - St.Arrival;
      St.TtlClosed = true;
    }
    // Cheapest recovery first: shift a stale supporting schedule as a
    // whole — structure and co-allocation survive, only the start
    // moves.
    const ScheduleVariant *ShiftBase = nullptr;
    Tick BestShift = 0;
    double BestCost = 0.0;
    for (const auto &V : A.S.variants()) {
      if (!V.feasible())
        continue;
      std::optional<Tick> Delta = minimalFeasibleShift(
          V.Result.Dist, Meta.grid(), A.TheJob.deadline(), Owner);
      if (!Delta)
        continue;
      double Cost = V.Result.Dist.economicCost();
      if (!ShiftBase || Cost < BestCost) {
        ShiftBase = &V;
        BestShift = *Delta;
        BestCost = Cost;
      }
    }
    if (ShiftBase) {
      Distribution Shifted =
          shiftDistribution(ShiftBase->Result.Dist, BestShift);
      if (Meta.commitDistribution(A.TheJob, Shifted, UserId)) {
        St.Committed = true;
        St.Switched = true;
        St.ShiftRecovered = true;
        St.CommitShift = BestShift;
        St.ActualStart = Shifted.startTime();
        St.Completion = Shifted.makespan();
        St.Cost = Shifted.economicCost();
        St.Cf = Shifted.costFunction(A.S.scheduledJob());
        A.Committed = true;
        runExecution(A, Shifted);
        return St.Completion;
      }
    }
    // Shifting failed: ask the metascheduler for a full reallocation.
    Strategy Fresh = Meta.reallocate(A.TheJob, Now);
    if (!Fresh.admissible()) {
      St.Rejected = true;
      A.Done = true;
      maybeRetire(JobId);
      return std::nullopt;
    }
    A.S = std::move(Fresh);
    A.ForecastVariant = SIZE_MAX;
    St.Reallocated = true;
    Pick = A.S.bestByCost();
    CWS_CHECK(Pick, "admissible strategy without a cheapest variant");
  }

  size_t PickIdx = static_cast<size_t>(Pick - A.S.variants().data());
  if (St.Reallocated || PickIdx != A.ForecastVariant)
    St.Switched = true;

  if (!Meta.commit(A.TheJob, *Pick, UserId)) {
    // Out of quota or raced by a same-tick reservation.
    St.Rejected = true;
    if (!St.TtlClosed) {
      St.Ttl = Now - St.Arrival;
      St.TtlClosed = true;
    }
    A.Done = true;
    maybeRetire(JobId);
    return std::nullopt;
  }

  St.Committed = true;
  St.ActualStart = Pick->Result.Dist.startTime();
  St.Completion = Pick->Result.Dist.makespan();
  St.Cost = Pick->Result.Dist.economicCost();
  St.Cf = Pick->Result.Dist.costFunction(A.S.scheduledJob());
  A.Committed = true;
  runExecution(A, Pick->Result.Dist);
  return St.Completion;
}

void JobManager::runExecution(ActiveJob &A, const Distribution &D) {
  if (!ExecEnabled)
    return;
  ExecutionConfig Config = Exec;
  Config.DataKind = strategyDataPolicy(A.S.kind());
  ExecutionResult R =
      executeDistribution(A.S.scheduledJob(), D, Meta.grid(), ExecRng,
                          Config);
  VoJobStats &St = statsOf(A);
  St.ActualCompletion = R.Completion;
  St.ExecutionKilled = !R.Succeeded;
}

void JobManager::onEnvironmentChange(Tick Now) {
  std::vector<unsigned> Retire;
  for (auto &[JobId, A] : Active) {
    VoJobStats &St = statsOf(A);
    if (St.TtlClosed)
      continue;
    if (!A.S.bestFitting(Meta.grid(), Metascheduler::ownerOf(JobId))) {
      St.Ttl = Now - St.Arrival;
      St.TtlClosed = true;
      if (A.Done)
        Retire.push_back(JobId);
    }
  }
  for (unsigned JobId : Retire)
    maybeRetire(JobId);
}

void JobManager::onCompletion(unsigned JobId, Tick Now) {
  auto It = Active.find(JobId);
  CWS_CHECK(It != Active.end(), "completion for an unknown job");
  ActiveJob &A = It->second;
  VoJobStats &St = statsOf(A);
  CWS_CHECK(St.Committed, "completion of an uncommitted job");
  if (!St.TtlClosed) {
    // The strategy outlived the job; its TTL is capped at completion.
    St.Ttl = Now - St.Arrival;
    St.TtlClosed = true;
  }
  A.Done = true;
  maybeRetire(JobId);
}

void JobManager::maybeRetire(unsigned JobId) {
  auto It = Active.find(JobId);
  if (It == Active.end())
    return;
  const ActiveJob &A = It->second;
  if (A.Done && Stats[A.StatsIdx].TtlClosed)
    Active.erase(It);
}
