//===-- flow/JobManager.cpp - Per-flow job managers -----------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "flow/JobManager.h"
#include "core/Shift.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Check.h"

using namespace cws;

namespace {
/// Lifecycle counters of the job flow: submit -> strategy build ->
/// commit -> (invalidation -> shift / reallocate) -> complete.
struct FlowMetrics {
  obs::Counter &Submitted = obs::Registry::global().counter(
      "cws_jobs_submitted_total", "jobs that entered the flow");
  obs::Counter &Admissible = obs::Registry::global().counter(
      "cws_jobs_admissible_total",
      "jobs whose arrival strategy had a feasible variant");
  obs::Counter &Committed = obs::Registry::global().counter(
      "cws_jobs_committed_total", "jobs with a committed schedule");
  obs::Counter &Rejected = obs::Registry::global().counter(
      "cws_jobs_rejected_total",
      "jobs rejected at negotiation (stale, unaffordable or raced)");
  obs::Counter &Invalidated = obs::Registry::global().counter(
      "cws_jobs_invalidated_total",
      "strategies that lost every fitting variant to background load");
  obs::Counter &ShiftRecovered = obs::Registry::global().counter(
      "cws_jobs_shift_recovered_total",
      "stale schedules recovered by shifting them whole");
  obs::Counter &Reallocated = obs::Registry::global().counter(
      "cws_jobs_reallocated_total",
      "jobs committed only after a full reallocation");
  obs::Counter &Switched = obs::Registry::global().counter(
      "cws_jobs_switched_total",
      "jobs committed on a different variant than forecast at arrival");
  obs::Counter &Completed = obs::Registry::global().counter(
      "cws_jobs_completed_total", "jobs that ran to completion");
  static FlowMetrics &get() {
    static FlowMetrics M;
    return M;
  }
};
} // namespace

bool JobManager::onArrival(const Job &J, Tick Now) {
  FlowMetrics &M = FlowMetrics::get();
  M.Submitted.add();
  obs::Span ArrivalSpan("flow", "job.arrival", "job",
                        static_cast<int64_t>(J.id()));
  Strategy S = Meta.buildStrategy(J, Now);

  VoJobStats St;
  St.JobId = J.id();
  St.Arrival = Now;
  St.Deadline = J.deadline();
  St.Admissible = S.admissible();

  size_t ForecastVariant = SIZE_MAX;
  if (const ScheduleVariant *Best = S.bestByCost()) {
    St.ForecastStart = Best->Result.Dist.startTime();
    St.Collisions = Best->Result.Collisions.size();
    ForecastVariant = static_cast<size_t>(Best - S.variants().data());
  }
  Stats.push_back(St);
  ArrivalSpan.arg("admissible", St.Admissible);

  if (!St.Admissible) {
    // Nothing will ever run; the strategy was dead on arrival.
    Stats.back().TtlClosed = true;
    return false;
  }
  M.Admissible.add();
  ActiveJob A{J, std::move(S), Stats.size() - 1, ForecastVariant};
  Active.emplace(J.id(), std::move(A));
  return true;
}

std::optional<Tick> JobManager::onNegotiation(unsigned JobId, Tick Now) {
  FlowMetrics &M = FlowMetrics::get();
  obs::Span NegotiationSpan("flow", "job.negotiate", "job",
                            static_cast<int64_t>(JobId));
  auto It = Active.find(JobId);
  CWS_CHECK(It != Active.end(), "negotiation for an unknown job");
  ActiveJob &A = It->second;
  VoJobStats &St = statsOf(A);
  OwnerId Owner = Metascheduler::ownerOf(JobId);

  const ScheduleVariant *Pick = A.S.bestFitting(Meta.grid(), Owner);
  if (!Pick) {
    // The whole arrival-time strategy went stale during negotiation:
    // close its TTL.
    obs::Tracer::global().instant("flow", "job.invalidate", "job",
                                  static_cast<int64_t>(JobId));
    if (!St.TtlClosed) {
      St.Ttl = Now - St.Arrival;
      St.TtlClosed = true;
      M.Invalidated.add();
    }
    // Cheapest recovery first: shift a stale supporting schedule as a
    // whole — structure and co-allocation survive, only the start
    // moves.
    const ScheduleVariant *ShiftBase = nullptr;
    Tick BestShift = 0;
    double BestCost = 0.0;
    for (const auto &V : A.S.variants()) {
      if (!V.feasible())
        continue;
      std::optional<Tick> Delta = minimalFeasibleShift(
          V.Result.Dist, Meta.grid(), A.TheJob.deadline(), Owner);
      if (!Delta)
        continue;
      double Cost = V.Result.Dist.economicCost();
      if (!ShiftBase || Cost < BestCost) {
        ShiftBase = &V;
        BestShift = *Delta;
        BestCost = Cost;
      }
    }
    if (ShiftBase) {
      Distribution Shifted =
          shiftDistribution(ShiftBase->Result.Dist, BestShift);
      if (Meta.commitDistribution(A.TheJob, Shifted, UserId)) {
        St.Committed = true;
        St.Switched = true;
        St.ShiftRecovered = true;
        St.CommitShift = BestShift;
        St.ActualStart = Shifted.startTime();
        St.Completion = Shifted.makespan();
        St.Cost = Shifted.economicCost();
        St.Cf = Shifted.costFunction(A.S.scheduledJob());
        A.Committed = true;
        M.Committed.add();
        M.ShiftRecovered.add();
        M.Switched.add();
        NegotiationSpan.arg("outcome", 1);
        runExecution(A, Shifted);
        return St.Completion;
      }
    }
    // Shifting failed: ask the metascheduler for a full reallocation.
    Strategy Fresh = Meta.reallocate(A.TheJob, Now);
    if (!Fresh.admissible()) {
      St.Rejected = true;
      A.Done = true;
      M.Rejected.add();
      NegotiationSpan.arg("outcome", 0);
      maybeRetire(JobId);
      return std::nullopt;
    }
    A.S = std::move(Fresh);
    A.ForecastVariant = SIZE_MAX;
    St.Reallocated = true;
    Pick = A.S.bestByCost();
    CWS_CHECK(Pick, "admissible strategy without a cheapest variant");
  }

  size_t PickIdx = static_cast<size_t>(Pick - A.S.variants().data());
  if (St.Reallocated || PickIdx != A.ForecastVariant)
    St.Switched = true;

  if (!Meta.commit(A.TheJob, *Pick, UserId)) {
    // Out of quota or raced by a same-tick reservation.
    St.Rejected = true;
    if (!St.TtlClosed) {
      St.Ttl = Now - St.Arrival;
      St.TtlClosed = true;
    }
    A.Done = true;
    M.Rejected.add();
    NegotiationSpan.arg("outcome", 0);
    maybeRetire(JobId);
    return std::nullopt;
  }

  M.Committed.add();
  if (St.Reallocated)
    M.Reallocated.add();
  if (St.Switched)
    M.Switched.add();
  obs::Tracer::global().instant("flow", "job.commit", "variant",
                                static_cast<int64_t>(PickIdx));
  NegotiationSpan.arg("variant", static_cast<int64_t>(PickIdx));
  St.Committed = true;
  St.ActualStart = Pick->Result.Dist.startTime();
  St.Completion = Pick->Result.Dist.makespan();
  St.Cost = Pick->Result.Dist.economicCost();
  St.Cf = Pick->Result.Dist.costFunction(A.S.scheduledJob());
  A.Committed = true;
  runExecution(A, Pick->Result.Dist);
  return St.Completion;
}

void JobManager::runExecution(ActiveJob &A, const Distribution &D) {
  if (!ExecEnabled)
    return;
  ExecutionConfig Config = Exec;
  Config.DataKind = strategyDataPolicy(A.S.kind());
  ExecutionResult R =
      executeDistribution(A.S.scheduledJob(), D, Meta.grid(), ExecRng,
                          Config);
  VoJobStats &St = statsOf(A);
  St.ActualCompletion = R.Completion;
  St.ExecutionKilled = !R.Succeeded;
}

void JobManager::onEnvironmentChange(Tick Now) {
  std::vector<unsigned> Retire;
  for (auto &[JobId, A] : Active) {
    VoJobStats &St = statsOf(A);
    if (St.TtlClosed)
      continue;
    if (!A.S.bestFitting(Meta.grid(), Metascheduler::ownerOf(JobId))) {
      St.Ttl = Now - St.Arrival;
      St.TtlClosed = true;
      FlowMetrics::get().Invalidated.add();
      obs::Tracer::global().instant("flow", "job.invalidate", "job",
                                    static_cast<int64_t>(JobId));
      if (A.Done)
        Retire.push_back(JobId);
    }
  }
  for (unsigned JobId : Retire)
    maybeRetire(JobId);
}

void JobManager::onCompletion(unsigned JobId, Tick Now) {
  FlowMetrics::get().Completed.add();
  obs::Tracer::global().instant("flow", "job.complete", "job",
                                static_cast<int64_t>(JobId));
  auto It = Active.find(JobId);
  CWS_CHECK(It != Active.end(), "completion for an unknown job");
  ActiveJob &A = It->second;
  VoJobStats &St = statsOf(A);
  CWS_CHECK(St.Committed, "completion of an uncommitted job");
  if (!St.TtlClosed) {
    // The strategy outlived the job; its TTL is capped at completion.
    St.Ttl = Now - St.Arrival;
    St.TtlClosed = true;
  }
  A.Done = true;
  maybeRetire(JobId);
}

void JobManager::maybeRetire(unsigned JobId) {
  auto It = Active.find(JobId);
  if (It == Active.end())
    return;
  const ActiveJob &A = It->second;
  if (A.Done && Stats[A.StatsIdx].TtlClosed)
    Active.erase(It);
}
