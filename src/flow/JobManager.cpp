//===-- flow/JobManager.cpp - Per-flow job managers -----------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "flow/JobManager.h"
#include "core/Shift.h"
#include "obs/Journal.h"
#include "obs/Metrics.h"
#include "obs/Profiler.h"
#include "obs/Trace.h"
#include "support/Check.h"

#include <algorithm>
#include <cmath>

using namespace cws;

namespace {
/// Lifecycle counters of the job flow: submit -> strategy build ->
/// commit -> (invalidation -> shift / reallocate) -> complete.
struct FlowMetrics {
  obs::Counter &Submitted = obs::Registry::global().counter(
      "cws_jobs_submitted_total", "jobs that entered the flow");
  obs::Counter &Admissible = obs::Registry::global().counter(
      "cws_jobs_admissible_total",
      "jobs whose arrival strategy had a feasible variant");
  obs::Counter &Committed = obs::Registry::global().counter(
      "cws_jobs_committed_total", "jobs with a committed schedule");
  obs::Counter &Rejected = obs::Registry::global().counter(
      "cws_jobs_rejected_total",
      "jobs rejected at negotiation (stale, unaffordable or raced)");
  obs::Counter &Invalidated = obs::Registry::global().counter(
      "cws_jobs_invalidated_total",
      "strategies that lost every fitting variant to background load");
  obs::Counter &ShiftRecovered = obs::Registry::global().counter(
      "cws_jobs_shift_recovered_total",
      "stale schedules recovered by shifting them whole");
  obs::Counter &Reallocated = obs::Registry::global().counter(
      "cws_jobs_reallocated_total",
      "jobs committed only after a full reallocation");
  obs::Counter &Switched = obs::Registry::global().counter(
      "cws_jobs_switched_total",
      "jobs committed on a different variant than forecast at arrival");
  obs::Counter &Completed = obs::Registry::global().counter(
      "cws_jobs_completed_total", "jobs that ran to completion");
  obs::Counter &TenderKept = obs::Registry::global().counter(
      "cws_shard_tender_kept_total",
      "snapshot tender picks that survived re-validation at apply time");
  obs::Counter &TenderRetried = obs::Registry::global().counter(
      "cws_shard_tender_retried_total",
      "snapshot tender picks broken by earlier commits of the drain, "
      "re-evaluated serially");
  static FlowMetrics &get() {
    static FlowMetrics M;
    return M;
  }
};

/// Instruments of the two invalidation paths. The scan triple sizes
/// the full re-validation pass (the ROADMAP hotspot); the index side
/// measures what the slot-index intersection pass looked at instead,
/// so a run report can show them next to each other.
struct EnvMetrics {
  obs::Counter &ScanJobs = obs::Registry::global().counter(
      "cws_env_scan_jobs_total",
      "strategies re-validated across environment changes");
  obs::Counter &ScanPlacements = obs::Registry::global().counter(
      "cws_env_scan_placements_total",
      "placements scanned re-validating strategies on env changes");
  obs::Histogram &ScanSize = obs::Registry::global().histogram(
      "cws_env_scan_size",
      {8.0, 32.0, 128.0, 512.0, 2048.0, 8192.0, 32768.0},
      "placements scanned per environment change");
  obs::Counter &IndexCandidates = obs::Registry::global().counter(
      "cws_env_index_candidates_total",
      "jobs whose indexed slots intersected a changed range");
  obs::Counter &IndexIntersections = obs::Registry::global().counter(
      "cws_env_index_intersections_total",
      "indexed slots intersected by changed ranges");
  obs::Counter &IndexPlacements = obs::Registry::global().counter(
      "cws_env_index_placements_total",
      "placements re-validated by the slot-index intersection pass");
  obs::Gauge &IndexSlots = obs::Registry::global().gauge(
      "cws_env_index_slots",
      "reserved slots currently indexed across open strategies");
  static EnvMetrics &get() {
    static EnvMetrics M;
    return M;
  }
};

/// Where an invalidated strategy broke: the first reservation of a
/// feasible variant that now overlaps somebody else's interval.
struct BrokenVariantSlot {
  size_t Variant;
  unsigned NodeId;
  Tick Start, End;
  Tick BusyStart, BusyEnd;
};

std::optional<BrokenVariantSlot> findBrokenSlot(const Strategy &S, const Grid &G,
                                         OwnerId Ignore) {
  for (size_t I = 0; I < S.variants().size(); ++I) {
    const ScheduleVariant &V = S.variants()[I];
    if (!V.feasible())
      continue;
    std::vector<PlannedSlot> Slots;
    Slots.reserve(V.Result.Dist.placements().size());
    for (const Placement &P : V.Result.Dist.placements())
      Slots.push_back({P.NodeId, P.Start, P.End});
    std::vector<BrokenSlot> Broken = collectBrokenSlots(G, Slots, Ignore);
    if (!Broken.empty()) {
      const Placement &P = V.Result.Dist.placements()[Broken.front().SlotIdx];
      return BrokenVariantSlot{I,     P.NodeId,
                        P.Start, P.End,
                        Broken.front().BusyStart, Broken.front().BusyEnd};
    }
  }
  return std::nullopt;
}

/// Journals one strategy invalidation, naming the broken slot (the
/// scan runs only when the journal is on — it is diagnostic-priced).
void journalInvalidate(obs::Journal &Jn, const Strategy &S, const Grid &G,
                       unsigned JobId, Tick Now, Tick Ttl) {
  if (std::optional<BrokenVariantSlot> B =
          findBrokenSlot(S, G, Metascheduler::ownerOf(JobId)))
    Jn.append(obs::JournalKind::Invalidate, JobId, Now,
              {{"variant", static_cast<int64_t>(B->Variant)},
               {"node", B->NodeId},
               {"start", B->Start},
               {"end", B->End},
               {"busy_start", B->BusyStart},
               {"busy_end", B->BusyEnd},
               {"ttl", Ttl}},
              "stale");
  else
    Jn.append(obs::JournalKind::Invalidate, JobId, Now, {{"ttl", Ttl}},
              "stale");
}
} // namespace

JobManager::PreparedArrival JobManager::prepareArrival(const Job &J,
                                                       Tick Now) {
  FlowMetrics::get().Submitted.add();
  obs::Span ArrivalSpan("flow", "job.arrival", "job",
                        static_cast<int64_t>(J.id()));
  PreparedArrival P{J, Strategy{}, {}};
  obs::Journal &Jn = obs::Journal::global();
  // Defer the arrival and build events: batched admissions build in
  // parallel, and finishArrival replays each buffer in canonical job
  // order so the exported stream is independent of lane interleaving.
  obs::JournalCaptureScope Capture(Jn, &P.Events);
  // The arrival event opens the job's causal chain and registers its
  // flow, so the flow-ignorant layers below (Strategy, Metascheduler)
  // inherit both.
  if (Jn.enabled())
    Jn.append(obs::JournalKind::Arrival, J.id(), Now,
              {{"deadline", J.deadline()},
               {"tasks", static_cast<int64_t>(J.taskCount())}},
              strategyName(Meta.strategyConfig().Kind), FlowId);
  P.S = Meta.buildStrategy(J, Now);
  return P;
}

bool JobManager::onArrival(const Job &J, Tick Now) {
  return finishArrival(prepareArrival(J, Now), Now);
}

bool JobManager::finishArrival(PreparedArrival &&P, Tick Now) {
  FlowMetrics &M = FlowMetrics::get();
  obs::Journal &Jn = obs::Journal::global();
  Jn.appendBuffered(P.Events);
  const Job &J = P.TheJob;
  Strategy S = std::move(P.S);

  VoJobStats St;
  St.JobId = J.id();
  St.Arrival = Now;
  St.Deadline = J.deadline();
  St.Admissible = S.admissible();

  size_t ForecastVariant = SIZE_MAX;
  if (const ScheduleVariant *Best = S.bestByCost()) {
    St.ForecastStart = Best->Result.Dist.startTime();
    St.Collisions = Best->Result.Collisions.size();
    ForecastVariant = static_cast<size_t>(Best - S.variants().data());
  }
  Stats.push_back(St);
  obs::Tracer::global().instant("flow", "job.admission", "admissible",
                                St.Admissible ? 1 : 0);
  if (Jn.enabled())
    Jn.append(obs::JournalKind::Admission, J.id(), Now,
              {{"admissible", St.Admissible ? 1 : 0},
               {"feasible", static_cast<int64_t>(S.feasibleCount())},
               {"variants", static_cast<int64_t>(S.variants().size())},
               {"forecast_variant",
                ForecastVariant == SIZE_MAX
                    ? -1
                    : static_cast<int64_t>(ForecastVariant)},
               {"forecast_start", St.ForecastStart},
               {"collisions", static_cast<int64_t>(St.Collisions)}});

  if (!St.Admissible) {
    // Nothing will ever run; the strategy was dead on arrival.
    Stats.back().TtlClosed = true;
    if (Jn.enabled())
      Jn.append(obs::JournalKind::Reject, J.id(), Now, {}, "inadmissible");
    return false;
  }
  M.Admissible.add();
  ActiveJob A{J, std::move(S), Stats.size() - 1, ForecastVariant};
  auto [Slot, Inserted] = Active.emplace(J.id(), std::move(A));
  CWS_CHECK(Inserted, "duplicate job id in the flow");
  if (Mode == InvalidationMode::Index)
    indexJob(J.id(), Slot->second);
  return true;
}

size_t JobManager::prepareNegotiation(unsigned JobId) const {
  obs::PhaseScope TenderPhase("tender.eval");
  auto It = Active.find(JobId);
  CWS_CHECK(It != Active.end(), "negotiation for an unknown job");
  const ActiveJob &A = It->second;
  const ScheduleVariant *Pick =
      A.S.bestFitting(Meta.grid(), Metascheduler::ownerOf(JobId));
  TenderPhase.work("variants_scanned", A.S.variants().size());
  return Pick ? static_cast<size_t>(Pick - A.S.variants().data())
              : PickNone;
}

std::optional<Tick> JobManager::onNegotiation(unsigned JobId, Tick Now,
                                              size_t PickHint) {
  FlowMetrics &M = FlowMetrics::get();
  obs::Span NegotiationSpan("flow", "job.negotiate", "job",
                            static_cast<int64_t>(JobId));
  obs::Journal &Jn = obs::Journal::global();
  auto It = Active.find(JobId);
  CWS_CHECK(It != Active.end(), "negotiation for an unknown job");
  ActiveJob &A = It->second;
  VoJobStats &St = statsOf(A);
  OwnerId Owner = Metascheduler::ownerOf(JobId);
  // Negotiation always ends the open phase (committed or rejected), so
  // the job leaves the intersection index either way.
  deindexJob(JobId);

  // Optimistic tender: trust a snapshot pick that still fits. Variant
  // costs are static and earlier commits of this drain only *add*
  // reservations, so the fitting set can only have shrunk since the
  // snapshot — a hint that survived is exactly the first-cheapest
  // variant a serial bestFitting would return now, and a PickNone
  // snapshot verdict cannot have un-stuck. Only a broken hint pays for
  // a serial re-evaluation.
  const ScheduleVariant *Pick = nullptr;
  if (PickHint == NoPickHint) {
    Pick = A.S.bestFitting(Meta.grid(), Owner);
  } else if (PickHint != PickNone) {
    CWS_CHECK(PickHint < A.S.variants().size(), "pick hint out of range");
    const ScheduleVariant &Hint = A.S.variants()[PickHint];
    if (Hint.feasible() && Hint.Result.Dist.fitsGrid(Meta.grid(), Owner)) {
      Pick = &Hint;
      M.TenderKept.add();
    } else {
      Pick = A.S.bestFitting(Meta.grid(), Owner);
      M.TenderRetried.add();
    }
  }
  if (!Pick) {
    // The whole arrival-time strategy went stale during negotiation:
    // close its TTL.
    obs::Tracer::global().instant("flow", "job.invalidate", "job",
                                  static_cast<int64_t>(JobId));
    if (!St.TtlClosed) {
      St.Ttl = Now - St.Arrival;
      St.TtlClosed = true;
      M.Invalidated.add();
      if (Jn.enabled())
        journalInvalidate(Jn, A.S, Meta.grid(), JobId, Now, St.Ttl);
    }
    // Cheapest recovery first: shift a stale supporting schedule as a
    // whole — structure and co-allocation survive, only the start
    // moves.
    const ScheduleVariant *ShiftBase = nullptr;
    Tick BestShift = 0;
    double BestCost = 0.0;
    for (const auto &V : A.S.variants()) {
      if (!V.feasible())
        continue;
      std::optional<Tick> Delta = minimalFeasibleShift(
          V.Result.Dist, Meta.grid(), A.TheJob.deadline(), Owner);
      if (!Delta)
        continue;
      double Cost = V.Result.Dist.economicCost();
      if (!ShiftBase || Cost < BestCost) {
        ShiftBase = &V;
        BestShift = *Delta;
        BestCost = Cost;
      }
    }
    if (Jn.enabled()) {
      if (ShiftBase)
        Jn.append(obs::JournalKind::ShiftAttempt, JobId, Now,
                  {{"variant", static_cast<int64_t>(
                                   ShiftBase - A.S.variants().data())},
                   {"delta", BestShift},
                   {"cost", std::llround(BestCost)}},
                  "candidate");
      else
        Jn.append(obs::JournalKind::ShiftAttempt, JobId, Now, {},
                  "no-candidate");
    }
    if (ShiftBase) {
      Distribution Shifted =
          shiftDistribution(ShiftBase->Result.Dist, BestShift);
      if (Meta.commitDistribution(A.TheJob, Shifted, UserId, Now)) {
        St.Committed = true;
        St.Switched = true;
        St.ShiftRecovered = true;
        St.CommitShift = BestShift;
        St.ActualStart = Shifted.startTime();
        St.Completion = Shifted.makespan();
        St.Cost = Shifted.economicCost();
        St.Cf = Shifted.costFunction(A.S.scheduledJob());
        A.Committed = true;
        M.Committed.add();
        M.ShiftRecovered.add();
        M.Switched.add();
        NegotiationSpan.arg("outcome", 1);
        if (Jn.enabled())
          Jn.append(obs::JournalKind::Commit, JobId, Now,
                    {{"variant", static_cast<int64_t>(
                                     ShiftBase - A.S.variants().data())},
                     {"start", St.ActualStart},
                     {"makespan", St.Completion},
                     {"cost", std::llround(St.Cost)},
                     {"cf", St.Cf},
                     {"shift", BestShift}},
                    "shift-recovered");
        runExecution(A, Shifted, Now);
        return St.Completion;
      }
    }
    // Shifting failed: ask the metascheduler for a reallocation — the
    // escalating staged repair in repair mode, the full rebuild
    // otherwise. A failed attempt leaves the old strategy's state
    // intact (build-then-swap), so the rejection below journals with
    // nothing lost.
    ReallocationResult Fresh = Meta.reallocate(A.TheJob, A.S, UserId, Now);
    if (!Fresh.admissible()) {
      St.Rejected = true;
      A.Done = true;
      M.Rejected.add();
      NegotiationSpan.arg("outcome", 0);
      if (Jn.enabled())
        Jn.append(obs::JournalKind::Reject, JobId, Now, {},
                  "stale-inadmissible");
      maybeRetire(JobId);
      return std::nullopt;
    }
    A.S = std::move(Fresh.S);
    A.ForecastVariant = SIZE_MAX;
    St.Reallocated = true;
    Pick = A.S.bestByCost();
    CWS_CHECK(Pick, "admissible strategy without a cheapest variant");
  }

  size_t PickIdx = static_cast<size_t>(Pick - A.S.variants().data());
  if (St.Reallocated || PickIdx != A.ForecastVariant)
    St.Switched = true;

  if (!Meta.commit(A.TheJob, *Pick, UserId, Now)) {
    // Out of quota or raced by a same-tick reservation.
    St.Rejected = true;
    if (!St.TtlClosed) {
      St.Ttl = Now - St.Arrival;
      St.TtlClosed = true;
    }
    A.Done = true;
    M.Rejected.add();
    NegotiationSpan.arg("outcome", 0);
    if (Jn.enabled())
      Jn.append(obs::JournalKind::Reject, JobId, Now, {}, "commit-failed");
    maybeRetire(JobId);
    return std::nullopt;
  }

  M.Committed.add();
  if (St.Reallocated)
    M.Reallocated.add();
  if (St.Switched)
    M.Switched.add();
  obs::Tracer::global().instant("flow", "job.commit", "variant",
                                static_cast<int64_t>(PickIdx));
  NegotiationSpan.arg("variant", static_cast<int64_t>(PickIdx));
  St.Committed = true;
  St.ActualStart = Pick->Result.Dist.startTime();
  St.Completion = Pick->Result.Dist.makespan();
  St.Cost = Pick->Result.Dist.economicCost();
  St.Cf = Pick->Result.Dist.costFunction(A.S.scheduledJob());
  A.Committed = true;
  if (Jn.enabled())
    Jn.append(obs::JournalKind::Commit, JobId, Now,
              {{"variant", static_cast<int64_t>(PickIdx)},
               {"start", St.ActualStart},
               {"makespan", St.Completion},
               {"cost", std::llround(St.Cost)},
               {"cf", St.Cf}},
              St.Reallocated ? "reallocated"
                             : (St.Switched ? "switched" : "forecast"));
  runExecution(A, Pick->Result.Dist, Now);
  return St.Completion;
}

void JobManager::runExecution(ActiveJob &A, const Distribution &D,
                              Tick Now) {
  if (!ExecEnabled)
    return;
  ExecutionConfig Config = Exec;
  Config.DataKind = strategyDataPolicy(A.S.kind());
  // Derive the job's deviation stream from (seed base, job id): the
  // deviations a job sees are then identical at any shard count and
  // independent of the order commits drained in.
  Prng JobRng(ExecSeed ^
              ((static_cast<uint64_t>(A.TheJob.id()) + 1) *
               0x9e3779b97f4a7c15ULL));
  ExecutionResult R =
      executeDistribution(A.S.scheduledJob(), D, Meta.grid(), JobRng,
                          Config);
  VoJobStats &St = statsOf(A);
  St.ActualCompletion = R.Completion;
  St.ExecutionKilled = !R.Succeeded;
  obs::Journal &Jn = obs::Journal::global();
  if (Jn.enabled())
    Jn.append(obs::JournalKind::Execution, A.TheJob.id(), Now,
              {{"completion", R.Completion},
               {"killed", R.Succeeded ? 0 : 1}},
              R.Succeeded ? "ok" : "wall-limit-kill");
}

size_t JobManager::queuedCount() const {
  size_t N = 0;
  for (const auto &[JobId, A] : Active)
    if (!A.Committed && !A.Done)
      ++N;
  return N;
}

size_t JobManager::inFlightCount() const {
  size_t N = 0;
  for (const auto &[JobId, A] : Active)
    if (A.Committed && !A.Done)
      ++N;
  return N;
}

void JobManager::invalidateJob(unsigned JobId, ActiveJob &A, Tick Now) {
  VoJobStats &St = statsOf(A);
  St.Ttl = Now - St.Arrival;
  St.TtlClosed = true;
  FlowMetrics::get().Invalidated.add();
  obs::Tracer::global().instant("flow", "job.invalidate", "job",
                                static_cast<int64_t>(JobId));
  // The trigger resolves to the environment change that just fired
  // (the background observer runs after every placement).
  obs::Journal &Jn = obs::Journal::global();
  if (Jn.enabled())
    journalInvalidate(Jn, A.S, Meta.grid(), JobId, Now, St.Ttl);
  deindexJob(JobId);
}

uint64_t JobManager::revalidate(unsigned JobId, ActiveJob &A, Tick Now) {
  uint64_t Placements = 0;
  for (const ScheduleVariant &V : A.S.variants())
    if (V.feasible())
      Placements += V.Result.Dist.placements().size();
  if (!A.S.bestFitting(Meta.grid(), Metascheduler::ownerOf(JobId))) {
    // A committed schedule's reservations are pinned — later background
    // load cannot break it, so a stale variant list (e.g. after a
    // shift-recovery) must not close the TTL early or count as an
    // invalidation.
    if (!A.Committed)
      invalidateJob(JobId, A, Now);
  }
  return Placements;
}

void JobManager::onEnvironmentChange(Tick Now) {
  EnvMetrics &EM = EnvMetrics::get();
  EnvChangeLog *Log = Meta.envChangeLog();
  if (Mode == InvalidationMode::Index && Log) {
    // Event-driven pass: drain the ranges added since the last check
    // and re-validate only the (job, variant) slots they intersect. A
    // strategy is built against the environment it sees, so a feasible
    // variant can only break when a *later* reservation overlaps one
    // of its placements — and every such reservation is in the log
    // (background placements and commits alike) while reservations are
    // never released mid-run. An un-intersected variant therefore
    // still fits, and a job is stale exactly when its last live
    // variant is confirmed broken — the same verdict the full scan
    // reaches, in the same (ascending job id) order.
    std::vector<SlotRef> Hits;
    uint64_t Intersections = 0;
    LogCursor.drain(*Log, [&](const ReservedRange &R) {
      Intersections += Index.collect(R.NodeId, R.Begin, R.End, Hits);
    });
    if (Hits.empty())
      return;
    std::sort(Hits.begin(), Hits.end(),
              [](const SlotRef &A, const SlotRef &B) {
                return A.JobId != B.JobId ? A.JobId < B.JobId
                                          : A.Variant < B.Variant;
              });
    uint64_t Placements = 0, Candidates = 0;
    for (size_t I = 0; I < Hits.size();) {
      unsigned JobId = Hits[I].JobId;
      auto It = Active.find(JobId);
      CWS_CHECK(It != Active.end(), "slot index tracks a retired job");
      ActiveJob &A = It->second;
      ++Candidates;
      for (; I < Hits.size() && Hits[I].JobId == JobId; ++I) {
        unsigned Variant = Hits[I].Variant;
        if (I > 0 && Hits[I - 1].JobId == JobId &&
            Hits[I - 1].Variant == Variant)
          continue; // duplicate (several ranges hit the same variant)
        const ScheduleVariant &V = A.S.variants()[Variant];
        Placements += V.Result.Dist.placements().size();
        if (V.Result.Dist.fitsGrid(Meta.grid(),
                                   Metascheduler::ownerOf(JobId)))
          continue; // bucket-level near miss; the variant still fits
        size_t Dropped = Index.removeVariant(JobId, Variant);
        if (Dropped)
          EM.IndexSlots.sub(static_cast<int64_t>(Dropped));
        CWS_CHECK(A.LiveFeasible > 0, "broken variant count underflow");
        --A.LiveFeasible;
      }
      if (A.LiveFeasible == 0)
        invalidateJob(JobId, A, Now);
    }
    EM.IndexCandidates.add(Candidates);
    EM.IndexIntersections.add(Intersections);
    EM.IndexPlacements.add(Placements);
    // The env.invalidate *scope* opens once per change on the caller
    // (flow/VirtualOrganization.cpp); the work fans out per manager,
    // so it is attributed by name and sums shard-invariantly.
    obs::Profiler::global().addWork("env.invalidate", "placements",
                                    Placements);
    return;
  }
  // The full scan (differential-testing oracle, and the fallback when
  // no env-change log is wired): re-validate every TTL-open strategy
  // placement by placement — O(active x variants x placements) per
  // change, committed in-flight jobs included even though they can
  // never invalidate. That wasted work is the baseline the index is
  // measured against. Sorted job order keeps the scan's journal
  // byte-identical to the index path's.
  std::vector<unsigned> Open;
  Open.reserve(Active.size());
  for (auto &[JobId, A] : Active)
    if (!statsOf(A).TtlClosed)
      Open.push_back(JobId);
  if (Open.empty())
    return; // Nothing scanned: keep the size histogram honest.
  std::sort(Open.begin(), Open.end());
  uint64_t Placements = 0;
  for (unsigned JobId : Open)
    Placements += revalidate(JobId, Active.find(JobId)->second, Now);
  EM.ScanJobs.add(Open.size());
  EM.ScanPlacements.add(Placements);
  EM.ScanSize.observe(static_cast<double>(Placements));
  obs::Profiler::global().addWork("env.invalidate", "placements",
                                  Placements);
}

void JobManager::onCompletion(unsigned JobId, Tick Now) {
  FlowMetrics::get().Completed.add();
  obs::Tracer::global().instant("flow", "job.complete", "job",
                                static_cast<int64_t>(JobId));
  auto It = Active.find(JobId);
  CWS_CHECK(It != Active.end(), "completion for an unknown job");
  ActiveJob &A = It->second;
  VoJobStats &St = statsOf(A);
  CWS_CHECK(St.Committed, "completion of an uncommitted job");
  if (!St.TtlClosed) {
    // The strategy outlived the job; its TTL is capped at completion.
    St.Ttl = Now - St.Arrival;
    St.TtlClosed = true;
  }
  A.Done = true;
  obs::Journal &Jn = obs::Journal::global();
  if (Jn.enabled())
    Jn.append(obs::JournalKind::Complete, JobId, Now, {{"ttl", St.Ttl}});
  maybeRetire(JobId);
}

void JobManager::indexJob(unsigned JobId, ActiveJob &A) {
  size_t Before = Index.slotCount();
  const std::vector<ScheduleVariant> &Variants = A.S.variants();
  for (size_t V = 0; V < Variants.size(); ++V) {
    if (!Variants[V].feasible())
      continue;
    ++A.LiveFeasible;
    for (const Placement &P : Variants[V].Result.Dist.placements())
      Index.add(JobId, static_cast<unsigned>(V), P.NodeId, P.Start, P.End);
  }
  // The gauge is global while each manager owns its index, so publish
  // deltas, not absolute sizes.
  EnvMetrics::get().IndexSlots.add(
      static_cast<int64_t>(Index.slotCount() - Before));
}

void JobManager::deindexJob(unsigned JobId) {
  size_t Removed = Index.remove(JobId);
  if (Removed)
    EnvMetrics::get().IndexSlots.sub(static_cast<int64_t>(Removed));
}

void JobManager::maybeRetire(unsigned JobId) {
  auto It = Active.find(JobId);
  if (It == Active.end())
    return;
  const ActiveJob &A = It->second;
  if (A.Done && Stats[A.StatsIdx].TtlClosed)
    Active.erase(It);
}
