//===-- core/Dot.h - Graphviz export of information graphs -------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Graphviz (DOT) rendering of a compound job's information graph —
/// the paper's Fig. 2a picture. Optionally annotates every task with
/// its placement from a distribution, coloring tasks by node.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_CORE_DOT_H
#define CWS_CORE_DOT_H

#include "job/Job.h"

#include <string>

namespace cws {

class Distribution;

/// Renders \p J as a DOT digraph: one node per task (label "name
/// ref/vol"), one edge per data transfer (label: transfer ticks).
std::string jobDot(const Job &J);

/// Like jobDot, but annotates each placed task with "@node [start,end)"
/// and colors tasks by their assigned node.
std::string jobDot(const Job &J, const Distribution &D);

} // namespace cws

#endif // CWS_CORE_DOT_H
