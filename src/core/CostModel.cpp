//===-- core/CostModel.cpp - Cost functions and economics -----------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "core/CostModel.h"
#include "resource/Grid.h"
#include "support/Check.h"

#include <cmath>

using namespace cws;

CostModel::CostModel(const Grid &G, CostConfig Config)
    : G(G), Config(Config) {}

int64_t CostModel::cfTerm(double Volume, Tick LoadTicks) {
  CWS_CHECK(LoadTicks > 0, "CF term needs a positive load time");
  double Exact = Volume / static_cast<double>(LoadTicks);
  return static_cast<int64_t>(std::ceil(Exact - 1e-9));
}

double CostModel::nodeCost(unsigned NodeId, Tick Ticks) const {
  CWS_CHECK(Ticks >= 0, "negative occupancy");
  return G.node(NodeId).pricePerTick() * static_cast<double>(Ticks);
}

double CostModel::transferCost(Tick Ticks) const {
  CWS_CHECK(Ticks >= 0, "negative transfer time");
  return Config.TransferCostPerTick * static_cast<double>(Ticks);
}
