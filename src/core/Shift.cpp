//===-- core/Shift.cpp - Distribution shifting ----------------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "core/Shift.h"
#include "resource/Grid.h"
#include "support/Check.h"

#include <algorithm>

using namespace cws;

Distribution cws::shiftDistribution(const Distribution &D, Tick Delta) {
  // Zero-shift fast path: a straight copy, byte-identical placements.
  if (Delta == 0)
    return D;
  Distribution Shifted;
  for (const auto &P : D.placements()) {
    CWS_CHECK(P.Start + Delta >= 0, "shift would move a placement before 0");
    Shifted.add({P.TaskId, P.NodeId, P.Start + Delta, P.End + Delta,
                 P.EconomicCost});
  }
  return Shifted;
}

std::optional<Tick> cws::minimalFeasibleShift(const Distribution &D,
                                              const Grid &G, Tick Deadline,
                                              OwnerId Ignore) {
  if (D.empty())
    return 0;
  // Delta = 0 fast path: an already-feasible distribution needs no
  // shift. Pinned behavior (no journal, no metrics, no search) so the
  // recovery paths can treat "already fits" as a strict no-op.
  if (D.makespan() <= Deadline) {
    bool Free = true;
    for (const auto &P : D.placements())
      if (!G.node(P.NodeId).timeline().isFreeFor(P.Start, P.End, Ignore)) {
        Free = false;
        break;
      }
    if (Free)
      return 0;
  }
  Tick Delta = 0;
  // Each round either succeeds or pushes Delta past at least one
  // blocking interval, so the loop terminates once the deadline clips.
  while (D.makespan() + Delta <= Deadline) {
    Tick NextDelta = Delta;
    bool Blocked = false;
    for (const auto &P : D.placements()) {
      const Timeline &Line = G.node(P.NodeId).timeline();
      Tick B = P.Start + Delta;
      Tick E = P.End + Delta;
      if (Line.isFreeFor(B, E, Ignore))
        continue;
      Blocked = true;
      // Find the furthest blocking interval overlapping [B, E) and jump
      // past it.
      for (const auto &I : Line.intervals()) {
        if (I.Begin >= E)
          break;
        if (I.End <= B || I.Owner == Ignore)
          continue;
        NextDelta = std::max(NextDelta, I.End - P.Start);
      }
    }
    if (!Blocked)
      return Delta;
    CWS_CHECK(NextDelta > Delta, "shift search made no progress");
    Delta = NextDelta;
  }
  return std::nullopt;
}
