//===-- core/Distribution.h - Supporting schedules --------------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Distribution is one element of a scheduling strategy:
///   <Task 1 / Allocation i, [Start 1, End 1]>, ...,
///   <Task N / Allocation j, [Start N, End N]>
/// i.e. a coordinated allocation of every task of a compound job to a
/// processor node with a wall-time reservation.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_CORE_DISTRIBUTION_H
#define CWS_CORE_DISTRIBUTION_H

#include "resource/Timeline.h"
#include "sim/Time.h"

#include <cstddef>
#include <optional>
#include <vector>

namespace cws {

class Grid;
class Job;

/// One task's allocation inside a distribution.
struct Placement {
  unsigned TaskId;
  unsigned NodeId;
  /// Wall-time reservation [Start, End) in the local batch system.
  Tick Start;
  Tick End;
  /// Quota units paid for the node occupancy plus inbound transfers.
  double EconomicCost;

  Tick loadTicks() const { return End - Start; }
};

/// A complete (or failed/partial) schedule of one compound job.
class Distribution {
public:
  /// Adds a placement; at most one per task.
  void add(const Placement &P);

  /// The placement of \p TaskId, or nullptr when not placed.
  const Placement *find(unsigned TaskId) const;

  /// Removes the placement of \p TaskId (collision repair); returns the
  /// removed placement, or std::nullopt when the task was not placed.
  std::optional<Placement> remove(unsigned TaskId);

  const std::vector<Placement> &placements() const { return Places; }
  size_t size() const { return Places.size(); }
  bool empty() const { return Places.empty(); }

  /// True when every task of \p J is placed.
  bool covers(const Job &J) const;

  /// Latest End over all placements (0 when empty).
  Tick makespan() const;

  /// Earliest Start over all placements (0 when empty).
  Tick startTime() const;

  /// Sum of per-placement economic costs.
  double economicCost() const;

  /// The paper's cost function CF = sum of ceil(V / T) over placements.
  int64_t costFunction(const Job &J) const;

  /// True when every reservation interval is currently free in \p G —
  /// i.e. this supporting schedule is still usable as-is. Intervals
  /// owned by \p Ignore (e.g. this very job's committed variant) do not
  /// count as busy.
  bool fitsGrid(const Grid &G, OwnerId Ignore = 0) const;

  /// Reserves every placement in \p G for \p Owner. Rolls back and
  /// returns false if any interval is taken.
  bool commit(Grid &G, OwnerId Owner) const;

private:
  std::vector<Placement> Places;
};

} // namespace cws

#endif // CWS_CORE_DISTRIBUTION_H
