//===-- core/Distribution.cpp - Supporting schedules ----------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "core/Distribution.h"
#include "core/CostModel.h"
#include "job/Job.h"
#include "resource/Grid.h"
#include "support/Check.h"

#include <algorithm>

using namespace cws;

void Distribution::add(const Placement &P) {
  CWS_CHECK(P.Start < P.End, "placement must span at least one tick");
  CWS_CHECK(!find(P.TaskId), "task placed twice in one distribution");
  Places.push_back(P);
}

const Placement *Distribution::find(unsigned TaskId) const {
  for (const auto &P : Places)
    if (P.TaskId == TaskId)
      return &P;
  return nullptr;
}

std::optional<Placement> Distribution::remove(unsigned TaskId) {
  for (size_t I = 0; I < Places.size(); ++I) {
    if (Places[I].TaskId != TaskId)
      continue;
    Placement P = Places[I];
    Places.erase(Places.begin() + static_cast<ptrdiff_t>(I));
    return P;
  }
  return std::nullopt;
}

bool Distribution::covers(const Job &J) const {
  if (Places.size() != J.taskCount())
    return false;
  for (const auto &T : J.tasks())
    if (!find(T.Id))
      return false;
  return true;
}

Tick Distribution::makespan() const {
  Tick Last = 0;
  for (const auto &P : Places)
    Last = std::max(Last, P.End);
  return Last;
}

Tick Distribution::startTime() const {
  if (Places.empty())
    return 0;
  Tick First = TickMax;
  for (const auto &P : Places)
    First = std::min(First, P.Start);
  return First;
}

double Distribution::economicCost() const {
  double Sum = 0.0;
  for (const auto &P : Places)
    Sum += P.EconomicCost;
  return Sum;
}

int64_t Distribution::costFunction(const Job &J) const {
  int64_t Sum = 0;
  for (const auto &P : Places)
    Sum += CostModel::cfTerm(J.task(P.TaskId).Volume, P.loadTicks());
  return Sum;
}

bool Distribution::fitsGrid(const Grid &G, OwnerId Ignore) const {
  for (const auto &P : Places)
    if (!G.node(P.NodeId).timeline().isFreeFor(P.Start, P.End, Ignore))
      return false;
  return true;
}

bool Distribution::commit(Grid &G, OwnerId Owner) const {
  for (size_t I = 0; I < Places.size(); ++I) {
    const Placement &P = Places[I];
    if (G.node(P.NodeId).timeline().reserve(P.Start, P.End, Owner))
      continue;
    // Roll back what we already reserved.
    G.releaseOwner(Owner);
    return false;
  }
  return true;
}
