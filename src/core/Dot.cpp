//===-- core/Dot.cpp - Graphviz export of information graphs ----------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "core/Dot.h"
#include "core/Distribution.h"

#include <cstdio>

using namespace cws;

namespace {

/// A small qualitative palette cycled by node id.
const char *nodeColor(unsigned NodeId) {
  static const char *Palette[] = {"#a6cee3", "#b2df8a", "#fb9a99",
                                  "#fdbf6f", "#cab2d6", "#ffff99",
                                  "#1f78b4", "#33a02c"};
  return Palette[NodeId % (sizeof(Palette) / sizeof(Palette[0]))];
}

std::string renderDot(const Job &J, const Distribution *D) {
  std::string Out = "digraph job {\n  rankdir=LR;\n  node [shape=box, "
                    "style=filled, fillcolor=white];\n";
  char Buf[256];
  for (const auto &T : J.tasks()) {
    const Placement *P = D ? D->find(T.Id) : nullptr;
    if (P)
      std::snprintf(Buf, sizeof(Buf),
                    "  t%u [label=\"%s\\nref %lld vol %g\\n@%u [%lld,%lld)\""
                    ", fillcolor=\"%s\"];\n",
                    T.Id, T.Name.c_str(),
                    static_cast<long long>(T.RefTicks), T.Volume, P->NodeId,
                    static_cast<long long>(P->Start),
                    static_cast<long long>(P->End), nodeColor(P->NodeId));
    else
      std::snprintf(Buf, sizeof(Buf),
                    "  t%u [label=\"%s\\nref %lld vol %g\"];\n", T.Id,
                    T.Name.c_str(), static_cast<long long>(T.RefTicks),
                    T.Volume);
    Out += Buf;
  }
  for (const auto &E : J.edges()) {
    std::snprintf(Buf, sizeof(Buf), "  t%u -> t%u [label=\"%lld\"];\n",
                  E.Src, E.Dst, static_cast<long long>(E.BaseTransfer));
    Out += Buf;
  }
  Out += "}\n";
  return Out;
}

} // namespace

std::string cws::jobDot(const Job &J) { return renderDot(J, nullptr); }

std::string cws::jobDot(const Job &J, const Distribution &D) {
  return renderDot(J, &D);
}
