//===-- core/Gantt.h - ASCII schedule rendering -----------------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ASCII Gantt rendering of distributions — the textual equivalent of
/// the paper's Fig. 2b timelines. One row per node; the job's tasks are
/// labelled with letters, other reservations (background load, other
/// jobs) show as '#'.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_CORE_GANTT_H
#define CWS_CORE_GANTT_H

#include "core/Distribution.h"

#include <cstddef>
#include <string>

namespace cws {

class Grid;
class Job;

/// Rendering options.
struct GanttOptions {
  /// Characters available for the time axis.
  size_t Width = 64;
  /// Also draw nodes that carry no placement of this distribution.
  bool ShowIdleNodes = false;
  /// Draw reservations of other owners as '#'.
  bool ShowForeignLoad = true;
};

/// Renders \p D on \p Env as a multi-line string, including a legend
/// mapping letters to tasks. Time runs from 0 to the distribution's
/// makespan (at least 1 tick).
std::string renderGantt(const Job &J, const Grid &Env, const Distribution &D,
                        const GanttOptions &Options = GanttOptions());

} // namespace cws

#endif // CWS_CORE_GANTT_H
