//===-- core/Repair.cpp - Staged repair of stale strategies ---------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "core/Repair.h"
#include "core/ChainAllocator.h"
#include "core/CostModel.h"
#include "job/Job.h"
#include "resource/DataPolicy.h"
#include "resource/Grid.h"
#include "resource/SlotIndex.h"
#include "support/Check.h"

#include <algorithm>

using namespace cws;

const char *cws::repairStageName(RepairStage S) {
  switch (S) {
  case RepairStage::Shift:
    return "shift";
  case RepairStage::Dp:
    return "dp";
  case RepairStage::Rebuild:
    return "rebuild";
  case RepairStage::Failed:
    return "failed";
  }
  CWS_UNREACHABLE("unknown repair stage");
}

namespace {

/// The distribution's placements as the raw slots the resource layer
/// scans.
std::vector<PlannedSlot> plannedSlots(const Distribution &D) {
  std::vector<PlannedSlot> Slots;
  Slots.reserve(D.placements().size());
  for (const Placement &P : D.placements())
    Slots.push_back({P.NodeId, P.Start, P.End});
  return Slots;
}

} // namespace

std::optional<VariantRepair>
cws::repairVariantByShift(const Job &Scheduled, const ScheduleVariant &V,
                          const RepairInputs &In) {
  if (!V.feasible())
    return std::nullopt;
  const Distribution &D = V.Result.Dist;
  std::vector<BrokenSlot> Broken =
      collectBrokenSlots(In.Env, plannedSlots(D), In.Owner);
  // One broken reservation is the stage-1 contract: with several, a
  // per-slot shift can violate the transfer gaps between them, which is
  // exactly what the stage-2 DP re-run handles.
  if (Broken.size() != 1)
    return std::nullopt;
  const Placement &P = D.placements()[Broken[0].SlotIdx];

  // Moving P later keeps every predecessor constraint (the move is
  // forward-only on the same node) but shrinks its gap to each placed
  // successor, which must keep room for the data transfer. A fresh
  // policy prices the gap conservatively: the replica memory of the
  // original build is gone, so replication transfers price at
  // first-delivery cost (>= whatever the build assumed).
  DataPolicy Policy(strategyDataPolicy(In.Config.Kind), In.Net,
                    In.Config.DataConfig);
  Tick LatestEnd = Scheduled.deadline();
  for (size_t EdgeIdx : Scheduled.outEdges(P.TaskId)) {
    const DataEdge &E = Scheduled.edge(EdgeIdx);
    const Placement *Succ = D.find(E.Dst);
    if (!Succ)
      continue;
    Tick Gap =
        Policy.previewTicks(P.TaskId, E.BaseTransfer, P.NodeId, Succ->NodeId);
    LatestEnd = std::min(LatestEnd, Succ->Start - Gap);
  }
  if (P.End > LatestEnd)
    return std::nullopt;

  // Minimal forward shift of the one placement: same jump-past-blockers
  // search as minimalFeasibleShift, except blockers are both foreign
  // busy intervals and sibling placements sharing the node (the plan is
  // not reserved yet, so the grid cannot rule those out).
  const Timeline &Line = In.Env.node(P.NodeId).timeline();
  Tick Delta = 0;
  bool Fits = false;
  while (P.End + Delta <= LatestEnd) {
    Tick Next = Delta;
    for (const Interval &Busy : Line.intervals()) {
      if (Busy.Owner == In.Owner || Busy.End <= P.Start + Delta ||
          Busy.Begin >= P.End + Delta)
        continue;
      Next = std::max(Next, Busy.End - P.Start);
    }
    for (const Placement &Q : D.placements()) {
      if (Q.TaskId == P.TaskId || Q.NodeId != P.NodeId ||
          Q.End <= P.Start + Delta || Q.Start >= P.End + Delta)
        continue;
      Next = std::max(Next, Q.End - P.Start);
    }
    if (Next == Delta) {
      Fits = true;
      break;
    }
    CWS_CHECK(Next > Delta, "single-slot shift made no progress");
    Delta = Next;
  }
  // Delta == 0 would mean the placement was never broken; the caller
  // only repairs stale variants, so a zero shift is a scan/repair
  // disagreement worth failing loudly on.
  if (!Fits || Delta == 0)
    return std::nullopt;

  Distribution Fixed;
  for (const Placement &Q : D.placements()) {
    if (Q.TaskId != P.TaskId) {
      Fixed.add(Q);
      continue;
    }
    Placement Moved = Q;
    Moved.Start += Delta;
    Moved.End += Delta;
    Fixed.add(Moved);
  }
  if (Fixed.makespan() > Scheduled.deadline() ||
      !Fixed.fitsGrid(In.Env, In.Owner))
    return std::nullopt;

  VariantRepair R;
  R.Repaired = V;
  R.Repaired.Result.Dist = std::move(Fixed);
  R.Stage = RepairStage::Shift;
  R.ShiftDelta = Delta;
  R.PlacementsPinned = D.placements().size() - 1;
  return R;
}

std::optional<VariantRepair>
cws::repairVariantByDp(const Job &Scheduled, const ScheduleVariant &V,
                       const RepairInputs &In) {
  if (!V.feasible())
    return std::nullopt;
  const Distribution &D = V.Result.Dist;
  const std::vector<CriticalWork> &Phases = V.Result.Phases;
  if (Phases.empty())
    return std::nullopt;
  std::vector<BrokenSlot> Broken =
      collectBrokenSlots(In.Env, plannedSlots(D), In.Owner);
  if (Broken.empty())
    return std::nullopt;

  // Collision repair during the original build can release a blocker
  // and re-extract its tasks into a later work, so the phases need not
  // partition the task set. Works run in order, so a task's *last*
  // containing phase is the one whose allocation produced its final
  // placement — assign each task there, and re-run a broken phase with
  // only the tasks it still owns (the re-extracted ones belong to, and
  // are pinned or re-run with, their later phase).
  std::vector<int> PhaseOfTask(Scheduled.taskCount(), -1);
  for (size_t Ph = 0; Ph < Phases.size(); ++Ph)
    for (unsigned T : Phases[Ph].TaskIds) {
      if (T >= PhaseOfTask.size())
        return std::nullopt;
      PhaseOfTask[T] = static_cast<int>(Ph);
    }

  std::vector<bool> PhaseBroken(Phases.size(), false);
  for (const BrokenSlot &B : Broken) {
    unsigned T = D.placements()[B.SlotIdx].TaskId;
    if (T >= PhaseOfTask.size() || PhaseOfTask[T] < 0)
      return std::nullopt;
    PhaseBroken[static_cast<size_t>(PhaseOfTask[T])] = true;
  }
  size_t BrokenPhases =
      static_cast<size_t>(std::count(PhaseBroken.begin(), PhaseBroken.end(), true));
  // All works broken means nothing survives to pin — that is a rebuild,
  // not a repair.
  if (BrokenPhases == Phases.size())
    return std::nullopt;

  // Every placed task must map to a phase, or the pin/re-run split
  // below cannot reason about it.
  for (const Placement &Q : D.placements())
    if (Q.TaskId >= PhaseOfTask.size() || PhaseOfTask[Q.TaskId] < 0)
      return std::nullopt;

  // The variant's original allocation context: same level candidates,
  // bias, switch penalty and front cap as the build that produced it.
  AllocatorPolicy Alloc;
  for (const auto &N : In.Env.nodes()) {
    bool Allowed = In.Config.AllowedNodes.empty() ||
                   std::find(In.Config.AllowedNodes.begin(),
                             In.Config.AllowedNodes.end(),
                             N.id()) != In.Config.AllowedNodes.end();
    if (Allowed && N.relPerf() <= V.LevelPerf + 1e-9)
      Alloc.CandidateNodes.push_back(N.id());
  }
  if (Alloc.CandidateNodes.empty())
    return std::nullopt;
  Alloc.Bias = V.Bias;
  Alloc.NodeSwitchPenalty =
      In.Config.Kind == StrategyKind::S3 ? In.Config.CoarsePenalty : 0.0;
  Alloc.MaxFrontSize = In.Config.MaxFrontSize;

  // One repair attempt: pin every placement of a kept work in a scratch
  // copy of the live environment, then re-run the chain DP for the
  // works in \p Rerun so it routes the re-planned chains around the
  // pins.
  auto Attempt =
      [&](const std::vector<bool> &Rerun) -> std::optional<VariantRepair> {
    Grid Scratch = In.Env;
    Scratch.releaseOwner(In.Owner);
    Distribution Fixed;
    uint64_t Pinned = 0;
    for (const Placement &Q : D.placements()) {
      if (Rerun[static_cast<size_t>(PhaseOfTask[Q.TaskId])])
        continue;
      if (!Scratch.node(Q.NodeId).timeline().reserve(Q.Start, Q.End,
                                                     In.Owner))
      return std::nullopt;
      Fixed.add(Q);
      ++Pinned;
    }

    DataPolicy Policy(strategyDataPolicy(In.Config.Kind), In.Net,
                      In.Config.DataConfig);
    CostModel Cost(Scratch, In.Config.Costs);
    ChainAllocator Allocator(Scheduled, Scratch, Policy, Cost, Alloc);
    Tick Release = std::max(In.Now, Scheduled.release());

    ScheduleResult Out;
    Out.Collisions = V.Result.Collisions;
    Out.Phases = Phases;
    uint64_t RerunCount = 0;
    for (size_t Ph = 0; Ph < Phases.size(); ++Ph) {
      if (!Rerun[Ph])
        continue;
      // Only the tasks this phase still owns: a re-extracted task's
      // final placement came from its later phase, which pins or
      // re-runs it. The DP requires consecutive chain tasks to share an
      // edge, so the owned tasks re-run as maximal contiguous segments
      // of the original chain; across the gaps the placement of the
      // task owned elsewhere carries the precedence
      // (placedInboundTicks sees it in the distribution).
      const std::vector<unsigned> &Chain = Phases[Ph].TaskIds;
      bool ReranAny = false;
      for (size_t I = 0; I < Chain.size();) {
        if (PhaseOfTask[Chain[I]] != static_cast<int>(Ph)) {
          ++I;
          continue;
        }
        size_t E = I;
        while (E < Chain.size() &&
               PhaseOfTask[Chain[E]] == static_cast<int>(Ph))
          ++E;
        CriticalWork Segment = Phases[Ph];
        Segment.TaskIds.assign(Chain.begin() + I, Chain.begin() + E);
        if (!Allocator.allocate(Segment, Fixed, Release,
                                Scheduled.deadline(), In.Owner,
                                Out.Collisions))
          return std::nullopt;
        ReranAny = true;
        I = E;
      }
      if (ReranAny)
        ++RerunCount;
    }
    if (!Fixed.covers(Scheduled) || Fixed.makespan() > Scheduled.deadline() ||
        !Fixed.fitsGrid(In.Env, In.Owner))
      return std::nullopt;

    Out.Dist = std::move(Fixed);
    Out.Feasible = true;
    VariantRepair R;
    R.Repaired = {V.Level, V.LevelPerf, V.Bias, std::move(Out)};
    R.Stage = RepairStage::Dp;
    R.WorksRerun = RerunCount;
    R.PlacementsPinned = Pinned;
    return R;
  };

  return Attempt(PhaseBroken);
}
