//===-- core/ParetoFront.h - (finish, cost) front maintenance ---*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maintenance of the chain DP's Pareto fronts of (finish time, economic
/// cost) labels. A front is kept sorted by Finish strictly ascending and
/// Cost strictly descending (modulo the cost epsilon) — the defining
/// invariant of a two-objective Pareto set — which makes insertion
/// O(log F + moved elements) instead of the two linear scans of a naive
/// dominance filter:
///
///   * the insertion point is found by binary search on Finish;
///   * the new label is dominated iff its left neighbour (the cheapest
///     label finishing no later) costs no more, or an equal-Finish label
///     at the insertion point costs no more;
///   * the labels the new one dominates are exactly a contiguous run
///     starting at the insertion point (Finish no earlier, Cost no
///     lower), removed with a single range erase.
///
/// The header is intentionally standalone and template-based so tests
/// and future search layers can drive the maintenance with their own
/// label and container types (any vector-like container of structs with
/// `Finish` and `Cost` members works, including `SmallVector`).
///
//===----------------------------------------------------------------------===//

#ifndef CWS_CORE_PARETOFRONT_H
#define CWS_CORE_PARETOFRONT_H

#include <algorithm>
#include <cstddef>

namespace cws {

/// Tolerance under which two economic costs are considered equal.
inline constexpr double CostEpsilon = 1e-9;

/// Epsilon-tolerant "A costs no more than B". This single helper is
/// used both for the dominance test (an existing label dominates the
/// candidate) and the eviction test (the candidate dominates existing
/// labels), so at equal cost the two directions agree and precedence is
/// decided by check order alone: dominance is tested first, hence ties
/// deterministically keep the incumbent label.
inline bool costLeq(double A, double B) { return A <= B + CostEpsilon; }

/// Outcome of one insertion, for the caller's load metrics.
struct ParetoInsertOutcome {
  /// False when the candidate was dominated and dropped.
  bool Inserted = false;
  /// True when the size cap forced a middle-of-front eviction.
  bool EvictedForCap = false;
};

/// Inserts \p L into \p Front, preserving the front invariant. When the
/// front would exceed \p MaxFrontSize the middle label is evicted so
/// both extremes (earliest finish, cheapest cost) survive.
template <typename FrontT, typename LabelT>
ParetoInsertOutcome paretoInsert(FrontT &Front, const LabelT &L,
                                 size_t MaxFrontSize) {
  ParetoInsertOutcome Outcome;
  auto Pos = std::lower_bound(
      Front.begin(), Front.end(), L,
      [](const LabelT &A, const LabelT &B) { return A.Finish < B.Finish; });

  // Dominance. Labels left of Pos finish strictly earlier and the one
  // directly left is the cheapest of them; a label at Pos with equal
  // Finish is the only other candidate dominator.
  if (Pos != Front.begin() && costLeq((Pos - 1)->Cost, L.Cost))
    return Outcome;
  if (Pos != Front.end() && Pos->Finish == L.Finish &&
      costLeq(Pos->Cost, L.Cost))
    return Outcome;

  // Eviction: everything from Pos finishes no earlier, and those the
  // new label dominates (cost no lower) are a contiguous prefix of that
  // suffix because Cost descends.
  auto EvictEnd = std::partition_point(
      Pos, Front.end(),
      [&L](const LabelT &E) { return costLeq(L.Cost, E.Cost); });
  Pos = Front.erase(Pos, EvictEnd);

  Front.insert(Pos, L);
  Outcome.Inserted = true;

  // Keep the extremes; evict from the middle when over the cap.
  if (Front.size() > MaxFrontSize) {
    Front.erase(Front.begin() + static_cast<ptrdiff_t>(Front.size() / 2));
    Outcome.EvictedForCap = true;
  }
  return Outcome;
}

} // namespace cws

#endif // CWS_CORE_PARETOFRONT_H
