//===-- core/Strategy.h - Scheduling strategies -----------------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Strategies: "a set of possible job scheduling variants with a
/// coordinated allocation of the tasks to the processor nodes". A
/// strategy holds one supporting schedule (Distribution) per environment
/// event it covers; which one is actually used "depends on the load
/// level of the resource dynamics".
///
/// An environment event is modelled as an estimation level: the variant
/// for level L assumes every node faster than L is taken by independent
/// job flows and plans on the remaining nodes, with either cost or
/// finish-time optimization. The paper's strategy types map to
/// (granularity, data policy, estimation coverage) triples:
///
///   S1  - fine-grain, active data replication, all levels
///   S2  - fine-grain, remote data access,      all levels
///   S3  - coarse-grain, static data storage,   all levels
///   MS1 - fine-grain, active data replication, best & worst level only
///
//===----------------------------------------------------------------------===//

#ifndef CWS_CORE_STRATEGY_H
#define CWS_CORE_STRATEGY_H

#include "core/Scheduler.h"
#include "job/Job.h"
#include "sim/Time.h"

#include <cstddef>
#include <vector>

namespace cws {

/// The strategy types evaluated in Section 4.
enum class StrategyKind { S1, S2, S3, MS1 };

/// Display name ("S1" ... "MS1").
const char *strategyName(StrategyKind Kind);

/// The data policy a strategy type uses.
DataPolicyKind strategyDataPolicy(StrategyKind Kind);

/// True for types that cover only the best and worst estimation level.
bool strategyBestWorstOnly(StrategyKind Kind);

/// Tunables of strategy generation.
struct StrategyConfig {
  StrategyKind Kind = StrategyKind::S1;
  /// Estimation levels are the distinct node performances, quantized to
  /// at most this many levels (Fig. 2a has four).
  size_t MaxLevels = 4;
  /// Node-switch penalty applied by coarse-grain types (S3).
  double CoarsePenalty = 8.0;
  /// Sibling-merge rounds of the coarse-grain job transformation (S3).
  unsigned CoarsenSiblingRounds = 1;
  /// Macro-task size bound of the coarse-grain transformation (S3);
  /// 0 = unbounded. Looser deadlines tolerate larger macro-tasks.
  Tick CoarsenMaxRef = 6;
  DataPolicyConfig DataConfig;
  CostConfig Costs;
  size_t MaxFrontSize = 8;
  /// Worker lanes Strategy::build fans variants out over. 0 resolves to
  /// `ThreadPool::defaultThreads()` (the CWS_BUILD_THREADS environment
  /// variable, else hardware concurrency); 1 builds serially on the
  /// calling thread. Variants are merged in (level, bias) order onto
  /// per-variant scratch state, so the result is identical at any
  /// thread count.
  size_t BuildThreads = 0;
  /// When non-empty, restrict scheduling to these node ids (a domain of
  /// the hierarchical framework). Estimation levels are derived from
  /// the restricted set.
  std::vector<unsigned> AllowedNodes;
};

/// One supporting schedule of a strategy.
struct ScheduleVariant {
  /// Estimation level this variant covers (index into levels()).
  size_t Level = 0;
  /// Relative performance of that level.
  double LevelPerf = 0.0;
  OptimizationBias Bias = OptimizationBias::Cost;
  ScheduleResult Result;

  bool feasible() const { return Result.Feasible; }
};

/// A generated strategy: the variant set plus bookkeeping.
class Strategy {
public:
  /// Generates the strategy of \p Config.Kind for \p J against the load
  /// state of \p Env at time \p Now. Every variant is built on its own
  /// copy of \p Env; the environment is not mutated.
  static Strategy build(const Job &J, const Grid &Env, const Network &Net,
                        const StrategyConfig &Config, OwnerId Owner,
                        Tick Now = 0);

  /// A strategy carrying \p Fixed as its single supporting schedule in
  /// place of \p Stale's variant set — the staged-repair outcome of the
  /// metascheduler. Kind, job and levels are inherited from \p Stale;
  /// the other stale variants are dropped because the repair only
  /// validated \p Fixed against the current environment (the flow layer
  /// commits the repaired job immediately, so a one-variant strategy is
  /// exactly what it needs).
  static Strategy repaired(const Strategy &Stale, ScheduleVariant Fixed,
                           Tick Now);

  StrategyKind kind() const { return Kind; }
  unsigned jobId() const { return JobId; }
  Tick builtAt() const { return BuiltAt; }

  /// The job the variants actually schedule: the submitted job for
  /// fine-grain types, its coarse-grain contraction for S3. Task ids in
  /// the variants' placements refer to *this* job.
  const Job &scheduledJob() const { return Scheduled; }

  const std::vector<ScheduleVariant> &variants() const { return Variants; }
  const std::vector<double> &levels() const { return Levels; }

  /// Number of variants with a complete, deadline-meeting schedule.
  size_t feasibleCount() const;

  /// True when at least one variant is feasible — the admissibility
  /// criterion of Fig. 3a.
  bool admissible() const { return feasibleCount() > 0; }

  /// Cheapest / fastest feasible variant (nullptr when none).
  const ScheduleVariant *bestByCost() const;
  const ScheduleVariant *bestByTime() const;

  /// Cheapest feasible variant whose reservations are still free in
  /// \p Current — the supporting schedule to use under the current load
  /// dynamics. Intervals owned by \p Ignore do not count as busy.
  /// Returns nullptr when the whole strategy is stale.
  const ScheduleVariant *bestFitting(const Grid &Current,
                                     OwnerId Ignore = 0) const;

  /// All collisions over all variants.
  std::vector<CollisionRecord> allCollisions() const;

private:
  StrategyKind Kind = StrategyKind::S1;
  unsigned JobId = 0;
  Tick BuiltAt = 0;
  Job Scheduled;
  std::vector<double> Levels;
  std::vector<ScheduleVariant> Variants;
};

} // namespace cws

#endif // CWS_CORE_STRATEGY_H
