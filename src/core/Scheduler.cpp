//===-- core/Scheduler.cpp - The critical works method --------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "core/Scheduler.h"
#include "job/Job.h"
#include "obs/Metrics.h"
#include "obs/Profiler.h"
#include "obs/Trace.h"
#include "support/Check.h"

#include <algorithm>

using namespace cws;

namespace {
struct SchedulerMetrics {
  obs::Counter &Phases = obs::Registry::global().counter(
      "cws_scheduler_phases_total",
      "critical works extracted across all scheduleJob calls");
  obs::Counter &Collisions = obs::Registry::global().counter(
      "cws_scheduler_collisions_total",
      "resource collisions recorded during chain allocation");
  obs::Counter &Repairs = obs::Registry::global().counter(
      "cws_scheduler_repairs_total",
      "collision repairs (blocker release-and-reschedule rounds)");
  obs::Counter &Infeasible = obs::Registry::global().counter(
      "cws_scheduler_infeasible_total",
      "scheduleJob calls that found no distribution within the deadline");
  static SchedulerMetrics &get() {
    static SchedulerMetrics M;
    return M;
  }
};
} // namespace

ScheduleResult cws::scheduleJob(const Job &J, const Grid &Env,
                                const Network &Net,
                                const SchedulerConfig &Config, OwnerId Owner,
                                Tick Now) {
  CWS_CHECK(Owner != 0, "scheduling needs a non-zero owner id");
  SchedulerMetrics &M = SchedulerMetrics::get();
  obs::Span SchedSpan("core", "scheduleJob", "tasks",
                      static_cast<int64_t>(J.taskCount()));
  ScheduleResult Result;
  if (J.taskCount() == 0) {
    Result.Feasible = true;
    return Result;
  }
  CWS_CHECK(J.isAcyclic(), "compound jobs must be acyclic");

  Grid Scratch = Env;
  DataPolicy Policy(Config.DataKind, Net, Config.DataConfig);
  CostModel Cost(Scratch, Config.Costs);

  AllocatorPolicy Alloc = Config.Alloc;
  if (Alloc.CandidateNodes.empty())
    for (const auto &N : Scratch.nodes())
      Alloc.CandidateNodes.push_back(N.id());

  ChainAllocator Allocator(J, Scratch, Policy, Cost, Alloc);

  Tick Release = std::max(Now, J.release());
  std::vector<bool> Assigned(J.taskCount(), false);
  size_t Remaining = J.taskCount();
  // Collision repair budget: when a later critical work cannot fit the
  // windows left by earlier ones, the conflicting placed successors are
  // released and rescheduled ("resolving collisions caused by conflicts
  // between tasks of different critical works").
  int Repairs = 0;
  const int MaxRepairs = Config.RepairBudget;
  while (Remaining > 0) {
    CriticalWork Work;
    {
      obs::Span ExtractSpan("core", "extractCriticalWork");
      Work = findCriticalWork(J, Assigned);
      ExtractSpan.arg("chain_len",
                      static_cast<int64_t>(Work.TaskIds.size()));
    }
    CWS_CHECK(!Work.TaskIds.empty(), "tasks remain but no critical work");
    Result.Phases.push_back(Work);
    M.Phases.add();
    bool Placed;
    {
      obs::PhaseScope DpPhase("chain.dp");
      uint64_t Labels0 = Allocator.labelsKept();
      uint64_t Reruns0 = Allocator.dpReruns();
      obs::Span AllocSpan("core", "allocateChain", "chain_len",
                          static_cast<int64_t>(Work.TaskIds.size()));
      Placed = Allocator.allocate(Work, Result.Dist, Release, J.deadline(),
                                  Owner, Result.Collisions);
      AllocSpan.arg("placed", Placed);
      DpPhase.work("labels", Allocator.labelsKept() - Labels0);
      DpPhase.work("dp_reruns", Allocator.dpReruns() - Reruns0);
    }
    if (Placed) {
      for (unsigned TaskId : Work.TaskIds) {
        Assigned[TaskId] = true;
        --Remaining;
      }
      continue;
    }

    // The chain cannot meet its windows. Its placed successors impose
    // the latest-finish bounds; free them and let later phases place
    // them again around this chain.
    std::vector<unsigned> Blockers;
    for (unsigned TaskId : Work.TaskIds)
      for (size_t EdgeIdx : J.outEdges(TaskId)) {
        unsigned Succ = J.edge(EdgeIdx).Dst;
        if (Result.Dist.find(Succ) &&
            std::find(Blockers.begin(), Blockers.end(), Succ) ==
                Blockers.end())
          Blockers.push_back(Succ);
      }
    if (Blockers.empty() || Repairs >= MaxRepairs) {
      // Genuinely infeasible within the deadline.
      M.Infeasible.add();
      M.Collisions.add(Result.Collisions.size());
      M.Repairs.add(static_cast<uint64_t>(Repairs));
      SchedSpan.arg("feasible", 0);
      return Result;
    }
    ++Repairs;
    obs::Tracer::global().instant("core", "repairCollision", "blockers",
                                  static_cast<int64_t>(Blockers.size()));
    for (unsigned Blocked : Blockers) {
      std::optional<Placement> P = Result.Dist.remove(Blocked);
      CWS_CHECK(P, "blocker vanished from the distribution");
      bool Released =
          Scratch.node(P->NodeId).timeline().release(P->Start, P->End, Owner);
      CWS_CHECK(Released, "blocker had no reservation");
      Assigned[Blocked] = false;
      ++Remaining;
      Result.Collisions.push_back({Blocked, P->NodeId, Owner, P->Start,
                                   P->Start, CollisionResolution::Moved});
    }
  }
  Result.Feasible =
      Result.Dist.covers(J) && Result.Dist.makespan() <= J.deadline();
  if (!Result.Feasible)
    M.Infeasible.add();
  M.Collisions.add(Result.Collisions.size());
  M.Repairs.add(static_cast<uint64_t>(Repairs));
  SchedSpan.arg("feasible", Result.Feasible);
  return Result;
}
