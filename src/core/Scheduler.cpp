//===-- core/Scheduler.cpp - The critical works method --------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "core/Scheduler.h"
#include "job/Job.h"
#include "support/Check.h"

#include <algorithm>

using namespace cws;

ScheduleResult cws::scheduleJob(const Job &J, const Grid &Env,
                                const Network &Net,
                                const SchedulerConfig &Config, OwnerId Owner,
                                Tick Now) {
  CWS_CHECK(Owner != 0, "scheduling needs a non-zero owner id");
  ScheduleResult Result;
  if (J.taskCount() == 0) {
    Result.Feasible = true;
    return Result;
  }
  CWS_CHECK(J.isAcyclic(), "compound jobs must be acyclic");

  Grid Scratch = Env;
  DataPolicy Policy(Config.DataKind, Net, Config.DataConfig);
  CostModel Cost(Scratch, Config.Costs);

  AllocatorPolicy Alloc = Config.Alloc;
  if (Alloc.CandidateNodes.empty())
    for (const auto &N : Scratch.nodes())
      Alloc.CandidateNodes.push_back(N.id());

  ChainAllocator Allocator(J, Scratch, Policy, Cost, Alloc);

  Tick Release = std::max(Now, J.release());
  std::vector<bool> Assigned(J.taskCount(), false);
  size_t Remaining = J.taskCount();
  // Collision repair budget: when a later critical work cannot fit the
  // windows left by earlier ones, the conflicting placed successors are
  // released and rescheduled ("resolving collisions caused by conflicts
  // between tasks of different critical works").
  int Repairs = 0;
  const int MaxRepairs = Config.RepairBudget;
  while (Remaining > 0) {
    CriticalWork Work = findCriticalWork(J, Assigned);
    CWS_CHECK(!Work.TaskIds.empty(), "tasks remain but no critical work");
    Result.Phases.push_back(Work);
    if (Allocator.allocate(Work, Result.Dist, Release, J.deadline(), Owner,
                           Result.Collisions)) {
      for (unsigned TaskId : Work.TaskIds) {
        Assigned[TaskId] = true;
        --Remaining;
      }
      continue;
    }

    // The chain cannot meet its windows. Its placed successors impose
    // the latest-finish bounds; free them and let later phases place
    // them again around this chain.
    std::vector<unsigned> Blockers;
    for (unsigned TaskId : Work.TaskIds)
      for (size_t EdgeIdx : J.outEdges(TaskId)) {
        unsigned Succ = J.edge(EdgeIdx).Dst;
        if (Result.Dist.find(Succ) &&
            std::find(Blockers.begin(), Blockers.end(), Succ) ==
                Blockers.end())
          Blockers.push_back(Succ);
      }
    if (Blockers.empty() || Repairs >= MaxRepairs)
      return Result; // Genuinely infeasible within the deadline.
    ++Repairs;
    for (unsigned Blocked : Blockers) {
      std::optional<Placement> P = Result.Dist.remove(Blocked);
      CWS_CHECK(P, "blocker vanished from the distribution");
      bool Released =
          Scratch.node(P->NodeId).timeline().release(P->Start, P->End, Owner);
      CWS_CHECK(Released, "blocker had no reservation");
      Assigned[Blocked] = false;
      ++Remaining;
      Result.Collisions.push_back({Blocked, P->NodeId, Owner, P->Start,
                                   P->Start, CollisionResolution::Moved});
    }
  }
  Result.Feasible =
      Result.Dist.covers(J) && Result.Dist.makespan() <= J.deadline();
  return Result;
}
