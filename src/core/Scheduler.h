//===-- core/Scheduler.h - The critical works method ------------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multiphase critical works method: repeatedly extract the longest
/// chain of unassigned tasks, allocate it with the DP chain allocator,
/// and resolve the collisions that arise between tasks of different
/// critical works competing for a node. The result is one Distribution —
/// a complete co-allocation of the compound job with wall-time
/// reservations.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_CORE_SCHEDULER_H
#define CWS_CORE_SCHEDULER_H

#include "core/ChainAllocator.h"
#include "core/Collision.h"
#include "core/CostModel.h"
#include "core/CriticalWork.h"
#include "core/Distribution.h"
#include "resource/DataPolicy.h"
#include "resource/Grid.h"
#include "resource/Network.h"

#include <vector>

namespace cws {

class Job;

/// Configuration of one scheduling run.
struct SchedulerConfig {
  DataPolicyKind DataKind = DataPolicyKind::RemoteAccess;
  DataPolicyConfig DataConfig;
  CostConfig Costs;
  /// Candidate nodes, bias, coarse-grain penalty, front size.
  AllocatorPolicy Alloc;
  /// How many times the scheduler may release blocking placed
  /// successors to resolve an inter-chain collision (0 disables the
  /// repair mechanism; see the ablation bench).
  int RepairBudget = 8;
};

/// Outcome of one run: the distribution (complete iff Feasible), the
/// collision log and the critical work of every phase.
struct ScheduleResult {
  Distribution Dist;
  bool Feasible = false;
  std::vector<CollisionRecord> Collisions;
  std::vector<CriticalWork> Phases;
};

/// Runs the critical works method for \p J against a *copy* of \p Env
/// (the real environment is never mutated; committing the resulting
/// distribution is the caller's decision). \p Now is the earliest
/// allowed start (the scheduling moment); reservations are placed within
/// [max(Now, J.release()), J.deadline()]. When
/// \p Config.Alloc.CandidateNodes is empty every node of \p Env is a
/// candidate.
ScheduleResult scheduleJob(const Job &J, const Grid &Env, const Network &Net,
                           const SchedulerConfig &Config, OwnerId Owner,
                           Tick Now = 0);

} // namespace cws

#endif // CWS_CORE_SCHEDULER_H
