//===-- core/CostModel.h - Cost functions and economics ---------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two cost notions of the paper. The *cost function* CF of a
/// distribution is the sum over tasks of ceil(V_ij / T_i) — computation
/// volume over the real node load time, "rounded to nearest not-smaller
/// integer" (Fig. 2b: CF2 = 37 vs CF1 = CF3 = 41). The *economic cost*
/// implements the virtual organization's quota economy: faster nodes
/// cost more per tick, transfers are billed to the consumer, so a user
/// pays extra "to use more powerful resource or to start the task
/// faster".
///
//===----------------------------------------------------------------------===//

#ifndef CWS_CORE_COSTMODEL_H
#define CWS_CORE_COSTMODEL_H

#include "sim/Time.h"

#include <cstdint>

namespace cws {

class Grid;

/// Economic parameters of the virtual organization.
struct CostConfig {
  /// Quota units billed per tick of data transfer.
  double TransferCostPerTick = 12.0;
};

/// Computes cost-function terms and economic prices.
class CostModel {
public:
  explicit CostModel(const Grid &G, CostConfig Config = CostConfig());

  /// One task's CF term: ceil(Volume / LoadTicks). \p LoadTicks is the
  /// real time the node is loaded by the task (its reservation length).
  static int64_t cfTerm(double Volume, Tick LoadTicks);

  /// Quota units for occupying \p NodeId for \p Ticks.
  double nodeCost(unsigned NodeId, Tick Ticks) const;

  /// Quota units for \p Ticks of data transfer.
  double transferCost(Tick Ticks) const;

  const CostConfig &config() const { return Config; }
  const Grid &grid() const { return G; }

private:
  const Grid &G;
  CostConfig Config;
};

} // namespace cws

#endif // CWS_CORE_COSTMODEL_H
