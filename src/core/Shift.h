//===-- core/Shift.h - Distribution shifting --------------------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-schedule shifting: when a supporting schedule has gone stale,
/// the cheapest recovery is often to move the entire co-allocation a
/// few ticks later — precedence and co-allocation structure are
/// preserved by construction, only the start changes. The negotiation
/// layer tries this before asking the metascheduler for a full
/// reallocation.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_CORE_SHIFT_H
#define CWS_CORE_SHIFT_H

#include "core/Distribution.h"

#include <optional>

namespace cws {

class Grid;

/// A copy of \p D with every placement moved \p Delta ticks later
/// (Delta may be negative if nothing becomes negative). Delta = 0 is a
/// pinned fast path: the copy is placement-for-placement identical to
/// \p D with no per-placement recomputation.
Distribution shiftDistribution(const Distribution &D, Tick Delta);

/// The smallest Delta >= 0 such that every placement of \p D shifted by
/// Delta is free in \p G (reservations of \p Ignore do not block) and
/// the shifted makespan still meets \p Deadline. Returns std::nullopt
/// when no such shift exists. An already-feasible distribution is a
/// pinned Delta = 0 fast path — checked first, with no side effects, so
/// recovery code can rely on "already fits" being a strict no-op.
/// Runs in O(conflicts x placements).
std::optional<Tick> minimalFeasibleShift(const Distribution &D, const Grid &G,
                                         Tick Deadline, OwnerId Ignore = 0);

} // namespace cws

#endif // CWS_CORE_SHIFT_H
