//===-- core/Strategy.cpp - Scheduling strategies -------------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "core/Strategy.h"
#include "job/Coarsen.h"
#include "job/Estimates.h"
#include "job/Job.h"
#include "obs/Journal.h"
#include "obs/Metrics.h"
#include "obs/Profiler.h"
#include "obs/Trace.h"
#include "support/Check.h"
#include "support/ThreadPool.h"

#include <cmath>

#include <algorithm>
#include <chrono>
#include <limits>

using namespace cws;

const char *cws::strategyName(StrategyKind Kind) {
  switch (Kind) {
  case StrategyKind::S1:
    return "S1";
  case StrategyKind::S2:
    return "S2";
  case StrategyKind::S3:
    return "S3";
  case StrategyKind::MS1:
    return "MS1";
  }
  CWS_UNREACHABLE("unknown strategy kind");
}

DataPolicyKind cws::strategyDataPolicy(StrategyKind Kind) {
  switch (Kind) {
  case StrategyKind::S1:
  case StrategyKind::MS1:
    return DataPolicyKind::ActiveReplication;
  case StrategyKind::S2:
    return DataPolicyKind::RemoteAccess;
  case StrategyKind::S3:
    return DataPolicyKind::StaticStorage;
  }
  CWS_UNREACHABLE("unknown strategy kind");
}

bool cws::strategyBestWorstOnly(StrategyKind Kind) {
  return Kind == StrategyKind::MS1;
}

/// Distinct node performances quantized to at most MaxLevels values
/// (always keeping the fastest and the slowest).
static std::vector<double> quantizeLevels(std::vector<double> Levels,
                                          size_t MaxLevels) {
  CWS_CHECK(MaxLevels >= 2, "need at least two estimation levels");
  if (Levels.size() <= MaxLevels)
    return Levels;
  std::vector<double> Picked;
  Picked.reserve(MaxLevels);
  for (size_t I = 0; I < MaxLevels; ++I) {
    size_t Idx = I * (Levels.size() - 1) / (MaxLevels - 1);
    Picked.push_back(Levels[Idx]);
  }
  Picked.erase(std::unique(Picked.begin(), Picked.end()), Picked.end());
  return Picked;
}

/// True when both distributions place every task identically.
static bool sameDistribution(const Distribution &A, const Distribution &B) {
  if (A.size() != B.size())
    return false;
  for (const auto &P : A.placements()) {
    const Placement *Q = B.find(P.TaskId);
    if (!Q || Q->NodeId != P.NodeId || Q->Start != P.Start || Q->End != P.End)
      return false;
  }
  return true;
}

Strategy Strategy::build(const Job &J, const Grid &Env, const Network &Net,
                         const StrategyConfig &Config, OwnerId Owner,
                         Tick Now) {
  static obs::Counter &Builds = obs::Registry::global().counter(
      "cws_strategy_builds_total", "strategies generated");
  static obs::Histogram &BuildMicros = obs::Registry::global().histogram(
      "cws_strategy_build_micros",
      {50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000,
       250000, 1000000},
      "wall-clock latency of one Strategy::build (microseconds)");
  obs::PhaseScope BuildPhase("strategy.build");
  obs::Span BuildSpan("core", "strategy.build", "job",
                      static_cast<int64_t>(J.id()));
  auto T0 = std::chrono::steady_clock::now();
  Strategy S;
  S.Kind = Config.Kind;
  S.JobId = J.id();
  S.BuiltAt = Now;
  // S3 plans the job at coarse granularity: fewer, larger tasks and
  // fewer data exchanges (the transformation keeps the QoS contract).
  if (Config.Kind == StrategyKind::S3) {
    CoarsenConfig CC;
    CC.SiblingRounds = Config.CoarsenSiblingRounds;
    CC.MaxMergedRef = Config.CoarsenMaxRef;
    S.Scheduled = coarsenJob(J, CC).Coarse;
  } else {
    S.Scheduled = J;
  }
  // Restrict to the allowed node set (a domain), when given.
  auto IsAllowed = [&Config](unsigned NodeId) {
    return Config.AllowedNodes.empty() ||
           std::find(Config.AllowedNodes.begin(), Config.AllowedNodes.end(),
                     NodeId) != Config.AllowedNodes.end();
  };
  std::vector<double> NodePerfs;
  for (const auto &N : Env.nodes())
    if (IsAllowed(N.id()))
      NodePerfs.push_back(N.relPerf());
  CWS_CHECK(!NodePerfs.empty(), "no allowed nodes in the environment");
  std::sort(NodePerfs.begin(), NodePerfs.end(), std::greater<double>());
  NodePerfs.erase(std::unique(NodePerfs.begin(), NodePerfs.end(),
                              [](double A, double B) {
                                return std::abs(A - B) < 1e-12;
                              }),
                  NodePerfs.end());
  S.Levels = quantizeLevels(std::move(NodePerfs), Config.MaxLevels);

  std::vector<size_t> Covered;
  if (strategyBestWorstOnly(Config.Kind) && S.Levels.size() > 2)
    Covered = {0, S.Levels.size() - 1};
  else
    for (size_t I = 0; I < S.Levels.size(); ++I)
      Covered.push_back(I);

  // One build task per covered (level, bias) pair. Each task runs
  // scheduleJob on its own scratch state (the scheduler copies the
  // environment and owns its data policy and cost model), so the set is
  // embarrassingly parallel — the paper's strategy is precisely a set
  // of *independent* supporting schedules, one per environment event.
  struct VariantTask {
    size_t Level;
    OptimizationBias Bias;
    std::vector<unsigned> Candidates;
  };
  std::vector<VariantTask> Tasks;
  for (size_t Level : Covered) {
    // The variant for level L covers the event "every node faster than L
    // is taken": it may only use nodes at or below that performance.
    std::vector<unsigned> Candidates;
    for (const auto &N : Env.nodes())
      if (IsAllowed(N.id()) && N.relPerf() <= S.Levels[Level] + 1e-9)
        Candidates.push_back(N.id());
    if (Candidates.empty())
      continue;
    for (OptimizationBias Bias :
         {OptimizationBias::Cost, OptimizationBias::Time})
      Tasks.push_back({Level, Bias, Candidates});
  }

  std::vector<ScheduleVariant> Built(Tasks.size());
  auto BuildOne = [&](size_t I) {
    const VariantTask &T = Tasks[I];
    SchedulerConfig SC;
    SC.DataKind = strategyDataPolicy(Config.Kind);
    SC.DataConfig = Config.DataConfig;
    SC.Costs = Config.Costs;
    SC.Alloc.CandidateNodes = T.Candidates;
    SC.Alloc.Bias = T.Bias;
    SC.Alloc.NodeSwitchPenalty =
        Config.Kind == StrategyKind::S3 ? Config.CoarsePenalty : 0.0;
    SC.Alloc.MaxFrontSize = Config.MaxFrontSize;
    Built[I] = {T.Level, S.Levels[T.Level], T.Bias,
                scheduleJob(S.Scheduled, Env, Net, SC, Owner, Now)};
  };

  size_t Lanes = Config.BuildThreads > 0 ? Config.BuildThreads
                                         : ThreadPool::defaultThreads();
  if (Lanes <= 1 || Tasks.size() <= 1)
    for (size_t I = 0; I < Tasks.size(); ++I)
      BuildOne(I);
  else
    ThreadPool::global().parallelFor(Tasks.size(), BuildOne, Lanes);

  // Merge in (level, bias) order — deterministic and identical to the
  // serial build at any lane count. Identical supporting schedules add
  // no coverage; keep one.
  for (ScheduleVariant &Variant : Built) {
    bool Duplicate = false;
    for (const auto &Existing : S.Variants)
      if (Existing.feasible() == Variant.feasible() &&
          sameDistribution(Existing.Result.Dist, Variant.Result.Dist)) {
        Duplicate = true;
        break;
      }
    if (!Duplicate)
      S.Variants.push_back(std::move(Variant));
  }
  // Journal the per-variant outcomes post-merge, on the calling thread
  // and in (level, bias) order — the event stream stays byte-identical
  // at any BuildThreads lane count.
  obs::Journal &Jn = obs::Journal::global();
  if (Jn.enabled()) {
    auto JobId = static_cast<int64_t>(J.id());
    for (size_t I = 0; I < S.Variants.size(); ++I) {
      const ScheduleVariant &V = S.Variants[I];
      Jn.append(obs::JournalKind::Variant, JobId, Now,
                {{"level", static_cast<int64_t>(V.Level)},
                 {"bias", static_cast<int64_t>(V.Bias)},
                 {"feasible", V.feasible() ? 1 : 0},
                 {"cost", std::llround(V.Result.Dist.economicCost())},
                 {"cf", V.Result.Dist.costFunction(S.Scheduled)},
                 {"makespan", V.Result.Dist.makespan()}},
                optimizationBiasName(V.Bias));
      for (const CollisionRecord &C : V.Result.Collisions)
        Jn.append(obs::JournalKind::Collision, JobId, Now,
                  {{"variant", static_cast<int64_t>(I)},
                   {"task", C.TaskId},
                   {"node", C.NodeId},
                   {"wanted", C.WantedStart},
                   {"actual", C.ActualStart},
                   {"owner", static_cast<int64_t>(C.BlockingOwner)}},
                  collisionResolutionName(C.Resolution));
    }
  }
  Builds.add();
  BuildMicros.observe(static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - T0)
          .count()));
  BuildSpan.arg("variants", static_cast<int64_t>(S.Variants.size()));
  BuildPhase.work("variants_built", Tasks.size());
  BuildPhase.work("variants_kept", S.Variants.size());
  return S;
}

Strategy Strategy::repaired(const Strategy &Stale, ScheduleVariant Fixed,
                            Tick Now) {
  Strategy S;
  S.Kind = Stale.Kind;
  S.JobId = Stale.JobId;
  S.BuiltAt = Now;
  S.Scheduled = Stale.Scheduled;
  S.Levels = Stale.Levels;
  S.Variants.push_back(std::move(Fixed));
  return S;
}

size_t Strategy::feasibleCount() const {
  size_t Count = 0;
  for (const auto &V : Variants)
    if (V.feasible())
      ++Count;
  return Count;
}

const ScheduleVariant *Strategy::bestByCost() const {
  const ScheduleVariant *Best = nullptr;
  for (const auto &V : Variants) {
    if (!V.feasible())
      continue;
    if (!Best ||
        V.Result.Dist.economicCost() < Best->Result.Dist.economicCost())
      Best = &V;
  }
  return Best;
}

const ScheduleVariant *Strategy::bestByTime() const {
  const ScheduleVariant *Best = nullptr;
  for (const auto &V : Variants) {
    if (!V.feasible())
      continue;
    if (!Best || V.Result.Dist.makespan() < Best->Result.Dist.makespan())
      Best = &V;
  }
  return Best;
}

const ScheduleVariant *Strategy::bestFitting(const Grid &Current,
                                             OwnerId Ignore) const {
  const ScheduleVariant *Best = nullptr;
  for (const auto &V : Variants) {
    if (!V.feasible() || !V.Result.Dist.fitsGrid(Current, Ignore))
      continue;
    if (!Best ||
        V.Result.Dist.economicCost() < Best->Result.Dist.economicCost())
      Best = &V;
  }
  return Best;
}

std::vector<CollisionRecord> Strategy::allCollisions() const {
  std::vector<CollisionRecord> All;
  for (const auto &V : Variants)
    All.insert(All.end(), V.Result.Collisions.begin(),
               V.Result.Collisions.end());
  return All;
}
