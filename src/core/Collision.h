//===-- core/Collision.h - Resource collisions ------------------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Collision records. A collision is a "conflict between tasks of
/// different critical works competing for the same resource" (Fig. 2b's
/// P4/P5 conflict on node 3); CWS also records conflicts against
/// background reservations of independent jobs. Fig. 3b reports how
/// collisions split between fast and slow nodes.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_CORE_COLLISION_H
#define CWS_CORE_COLLISION_H

#include "resource/Node.h"
#include "sim/Time.h"

#include <cstddef>
#include <vector>

namespace cws {

class Grid;

/// How a collision was resolved.
enum class CollisionResolution {
  /// The task kept the contended node but started later.
  Shifted,
  /// The task was re-allocated to a different node (the paper's P5 case:
  /// "resolved by the allocation of P4 to the processor node 3 and P5 to
  /// the node 4").
  Moved,
};

/// Short name ("shifted" / "moved").
const char *collisionResolutionName(CollisionResolution R);

/// One detected and resolved collision.
struct CollisionRecord {
  /// The task whose preferred slot was taken.
  unsigned TaskId;
  /// The contended node.
  unsigned NodeId;
  /// Holder of the conflicting reservation; equal to the scheduling
  /// job's owner id for intra-job (critical-work vs critical-work)
  /// collisions, different for collisions with background load.
  OwnerId BlockingOwner;
  /// Where the task wanted to start and where it ended up (on the
  /// contended node for Shifted; on the replacement node for Moved).
  Tick WantedStart;
  Tick ActualStart;
  CollisionResolution Resolution;
};

/// Collision counts split the way Fig. 3b reports them: the fast band
/// versus everything slower.
struct CollisionSplit {
  size_t Fast = 0;
  size_t Slow = 0;

  size_t total() const { return Fast + Slow; }
  double fastPercent() const {
    return total() ? 100.0 * static_cast<double>(Fast) /
                         static_cast<double>(total())
                   : 0.0;
  }
  double slowPercent() const { return total() ? 100.0 - fastPercent() : 0.0; }
};

/// Splits \p Records by the contended node's performance group.
/// \p IntraJobOwner restricts counting to collisions whose blocking
/// owner matches (pass 0 to count everything).
CollisionSplit splitCollisions(const std::vector<CollisionRecord> &Records,
                               const Grid &G, OwnerId IntraJobOwner = 0);

} // namespace cws

#endif // CWS_CORE_COLLISION_H
