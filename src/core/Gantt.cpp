//===-- core/Gantt.cpp - ASCII schedule rendering -------------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "core/Gantt.h"
#include "job/Job.h"
#include "resource/Grid.h"
#include "support/Check.h"

#include <algorithm>
#include <cstdio>

using namespace cws;

namespace {

/// Task label: 'A'..'Z', then 'a'..'z', then '*'.
char taskLabel(size_t Index) {
  if (Index < 26)
    return static_cast<char>('A' + Index);
  if (Index < 52)
    return static_cast<char>('a' + (Index - 26));
  return '*';
}

} // namespace

std::string cws::renderGantt(const Job &J, const Grid &Env,
                             const Distribution &D,
                             const GanttOptions &Options) {
  CWS_CHECK(Options.Width >= 8, "gantt needs at least 8 columns");
  Tick Span = std::max<Tick>(1, D.makespan());
  // Whole ticks per column, rounded up so the chart always fits.
  Tick PerCol = (Span + static_cast<Tick>(Options.Width) - 1) /
                static_cast<Tick>(Options.Width);
  auto Columns = static_cast<size_t>((Span + PerCol - 1) / PerCol);

  auto ColOf = [&](Tick T) {
    return static_cast<size_t>(
        std::min<Tick>(T / PerCol, static_cast<Tick>(Columns) - 1));
  };

  // Letter per task id, in placement order for stable legends.
  std::vector<char> LabelOf(J.taskCount(), '?');
  for (size_t I = 0; I < D.placements().size(); ++I)
    LabelOf[D.placements()[I].TaskId] = taskLabel(I);

  std::string Out;
  char Buf[128];
  std::snprintf(Buf, sizeof(Buf),
                "time 0..%lld, one column = %lld tick(s)\n",
                static_cast<long long>(Span),
                static_cast<long long>(PerCol));
  Out += Buf;

  for (const auto &N : Env.nodes()) {
    std::string Row(Columns, '.');
    bool Used = false;
    if (Options.ShowForeignLoad) {
      for (const auto &I : N.timeline().intervals()) {
        if (I.Begin >= Span)
          break;
        for (size_t C = ColOf(I.Begin);
             C <= ColOf(std::min(Span, I.End) - 1); ++C)
          Row[C] = '#';
      }
    }
    for (const auto &P : D.placements()) {
      if (P.NodeId != N.id())
        continue;
      Used = true;
      for (size_t C = ColOf(P.Start); C <= ColOf(P.End - 1); ++C)
        Row[C] = LabelOf[P.TaskId];
    }
    if (!Used && !Options.ShowIdleNodes)
      continue;
    std::snprintf(Buf, sizeof(Buf), "node %2u (perf %4.2f) |", N.id(),
                  N.relPerf());
    Out += Buf;
    Out += Row;
    Out += "|\n";
  }

  Out += "legend:";
  for (const auto &P : D.placements()) {
    std::snprintf(Buf, sizeof(Buf), " %c=%s[%lld,%lld)",
                  LabelOf[P.TaskId], J.task(P.TaskId).Name.c_str(),
                  static_cast<long long>(P.Start),
                  static_cast<long long>(P.End));
    Out += Buf;
  }
  if (Options.ShowForeignLoad)
    Out += "  #=other reservations";
  Out += "\n";
  return Out;
}
