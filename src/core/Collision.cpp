//===-- core/Collision.cpp - Resource collisions --------------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "core/Collision.h"
#include "resource/Grid.h"
#include "support/Check.h"

using namespace cws;

const char *cws::collisionResolutionName(CollisionResolution R) {
  switch (R) {
  case CollisionResolution::Shifted:
    return "shifted";
  case CollisionResolution::Moved:
    return "moved";
  }
  CWS_UNREACHABLE("unknown collision resolution");
}

CollisionSplit
cws::splitCollisions(const std::vector<CollisionRecord> &Records,
                     const Grid &G, OwnerId IntraJobOwner) {
  CollisionSplit Split;
  for (const auto &R : Records) {
    if (IntraJobOwner != 0 && R.BlockingOwner != IntraJobOwner)
      continue;
    if (G.node(R.NodeId).group() == PerfGroup::Fast)
      ++Split.Fast;
    else
      ++Split.Slow;
  }
  return Split;
}
