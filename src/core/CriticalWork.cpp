//===-- core/CriticalWork.cpp - Critical work extraction ------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "core/CriticalWork.h"
#include "job/Job.h"
#include "support/Check.h"

#include <algorithm>

using namespace cws;

CriticalWork cws::findCriticalWork(const Job &J,
                                   const std::vector<bool> &Assigned) {
  CWS_CHECK(Assigned.size() == J.taskCount(),
            "assignment mask does not match the job");
  std::vector<unsigned> Order = J.topoOrder();
  CWS_CHECK(Order.size() == J.taskCount() || J.taskCount() == 0,
            "critical work of a cyclic job");

  // Longest path over the subgraph induced by unassigned tasks. Best[t]
  // is the best chain length ending at t; From[t] reconstructs it.
  constexpr Tick None = -1;
  std::vector<Tick> Best(J.taskCount(), None);
  std::vector<int64_t> From(J.taskCount(), -1);
  Tick BestLen = None;
  int64_t BestEnd = -1;
  for (unsigned TaskId : Order) {
    if (Assigned[TaskId])
      continue;
    Tick Incoming = 0;
    int64_t Via = -1;
    for (size_t EdgeIdx : J.inEdges(TaskId)) {
      const DataEdge &E = J.edge(EdgeIdx);
      if (Assigned[E.Src] || Best[E.Src] == None)
        continue;
      Tick Candidate = Best[E.Src] + E.BaseTransfer;
      if (Candidate > Incoming) {
        Incoming = Candidate;
        Via = E.Src;
      }
    }
    Best[TaskId] = Incoming + J.task(TaskId).RefTicks;
    From[TaskId] = Via;
    if (Best[TaskId] > BestLen) {
      BestLen = Best[TaskId];
      BestEnd = TaskId;
    }
  }

  CriticalWork Work;
  if (BestEnd < 0)
    return Work;
  Work.RefLength = BestLen;
  for (int64_t At = BestEnd; At >= 0; At = From[static_cast<size_t>(At)])
    Work.TaskIds.push_back(static_cast<unsigned>(At));
  std::reverse(Work.TaskIds.begin(), Work.TaskIds.end());
  return Work;
}

std::vector<CriticalWork> cws::criticalWorkPhases(const Job &J) {
  std::vector<CriticalWork> Phases;
  std::vector<bool> Assigned(J.taskCount(), false);
  size_t Remaining = J.taskCount();
  while (Remaining > 0) {
    CriticalWork Work = findCriticalWork(J, Assigned);
    CWS_CHECK(!Work.TaskIds.empty(),
              "no critical work although tasks remain");
    for (unsigned TaskId : Work.TaskIds) {
      CWS_CHECK(!Assigned[TaskId], "task assigned twice");
      Assigned[TaskId] = true;
      --Remaining;
    }
    Phases.push_back(std::move(Work));
  }
  return Phases;
}

namespace {

/// DFS enumerator for allFullChains.
class ChainEnumerator {
public:
  ChainEnumerator(const Job &J, size_t MaxChains)
      : J(J), MaxChains(MaxChains) {}

  std::vector<CriticalWork> run() {
    for (unsigned Source : J.sources()) {
      Prefix.push_back(Source);
      descend(Source, J.task(Source).RefTicks);
      Prefix.pop_back();
    }
    std::stable_sort(Found.begin(), Found.end(),
                     [](const CriticalWork &A, const CriticalWork &B) {
                       return A.RefLength > B.RefLength;
                     });
    return std::move(Found);
  }

private:
  void descend(unsigned TaskId, Tick Length) {
    if (Found.size() >= MaxChains)
      return;
    if (J.outEdges(TaskId).empty()) {
      Found.push_back({Prefix, Length});
      return;
    }
    for (size_t EdgeIdx : J.outEdges(TaskId)) {
      const DataEdge &E = J.edge(EdgeIdx);
      Prefix.push_back(E.Dst);
      descend(E.Dst, Length + E.BaseTransfer + J.task(E.Dst).RefTicks);
      Prefix.pop_back();
    }
  }

  const Job &J;
  size_t MaxChains;
  std::vector<unsigned> Prefix;
  std::vector<CriticalWork> Found;
};

} // namespace

std::vector<CriticalWork> cws::allFullChains(const Job &J, size_t MaxChains) {
  return ChainEnumerator(J, MaxChains).run();
}
