//===-- core/CriticalWork.h - Critical work extraction ----------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Critical works. A critical work is "the longest (in terms of
/// estimated execution time) chain of unassigned tasks" of a compound
/// job, where chain length counts reference execution times plus data
/// transfer times (Fig. 2a's four works are 12, 11, 10 and 9 units
/// long). The multiphase critical works method extracts one work per
/// phase until every task is assigned.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_CORE_CRITICALWORK_H
#define CWS_CORE_CRITICALWORK_H

#include "sim/Time.h"

#include <cstddef>
#include <vector>

namespace cws {

class Job;

/// One chain of tasks plus its reference length.
struct CriticalWork {
  /// Task ids in precedence order.
  std::vector<unsigned> TaskIds;
  /// Sum of reference execution ticks plus base transfer ticks along the
  /// chain.
  Tick RefLength = 0;
};

/// Longest chain within the tasks for which Assigned[t] is false.
/// Transfers count only between two unassigned chain neighbours. Returns
/// an empty work when everything is assigned.
CriticalWork findCriticalWork(const Job &J, const std::vector<bool> &Assigned);

/// The phase sequence of the critical works method: repeatedly the
/// longest chain of still-unassigned tasks. The returned works partition
/// the task set.
std::vector<CriticalWork> criticalWorkPhases(const Job &J);

/// Every maximal source-to-sink chain with its reference length, longest
/// first, capped at \p MaxChains (chain count can be exponential).
/// Reproduces the paper's enumeration "P1-P2-P4-P6, P1-P2-P5-P6,
/// P1-P3-P4-P6, P1-P3-P5-P6" for Fig. 2a.
std::vector<CriticalWork> allFullChains(const Job &J, size_t MaxChains = 64);

} // namespace cws

#endif // CWS_CORE_CRITICALWORK_H
