//===-- core/Repair.h - Staged repair of stale strategies -------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Escalating staged repair of a stale scheduling strategy. When an
/// environment change breaks a supporting schedule, a full rebuild
/// discards every still-valid placement; the repair stages recover
/// monotonically more of the strategy's structure at monotonically
/// higher cost:
///
///  - **stage 1** (`repairVariantByShift`): exactly one planned
///    reservation is broken — re-fit it inside its admissible window on
///    the same node, the single-slot analogue of the whole-schedule
///    `minimalFeasibleShift` recovery. The economic cost is invariant
///    (node cost depends on node and duration only, never on start
///    time), so the repaired variant prices identically to the stale
///    optimum.
///  - **stage 2** (`repairVariantByDp`): re-run the chain DP
///    (`ChainAllocator`) for only the critical works whose placements
///    were invalidated, pinning every surviving placement as fixed
///    occupancy in a scratch grid.
///  - **stage 3** is the full `Strategy::build` rebuild; the
///    metascheduler escalates to it when both repairs decline.
///
/// Both repairs are pure with respect to the live environment: they
/// read \p Env, validate the candidate against it, and hand the caller
/// a repaired variant to swap in — reservations move only at commit.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_CORE_REPAIR_H
#define CWS_CORE_REPAIR_H

#include "core/Strategy.h"
#include "resource/Timeline.h"
#include "sim/Time.h"

#include <cstdint>
#include <optional>

namespace cws {

class Grid;
class Job;
class Network;

/// Which stage of the escalating repair resolved a reallocation.
enum class RepairStage : uint8_t {
  /// Stage 1: the one broken reservation was shifted in place.
  Shift,
  /// Stage 2: the broken critical works were re-run through the DP
  /// against the pinned survivors.
  Dp,
  /// Stage 3: full strategy rebuild.
  Rebuild,
  /// Even the rebuild came back inadmissible; the caller keeps the old
  /// strategy.
  Failed,
};

/// Short name ("shift" / "dp" / "rebuild" / "failed") — the journal
/// `repair.stage` detail vocabulary.
const char *repairStageName(RepairStage S);

/// Everything a variant repair needs from the metascheduler.
struct RepairInputs {
  const Grid &Env;
  const Network &Net;
  const StrategyConfig &Config;
  OwnerId Owner = 0;
  Tick Now = 0;
};

/// A successfully repaired supporting schedule plus how it was won.
struct VariantRepair {
  ScheduleVariant Repaired;
  RepairStage Stage = RepairStage::Failed;
  /// Stage 1: how far the broken reservation moved.
  Tick ShiftDelta = 0;
  /// Stage 2: critical works re-run through the DP.
  uint64_t WorksRerun = 0;
  /// Stage 2: surviving placements pinned as fixed occupancy.
  uint64_t PlacementsPinned = 0;
};

/// Stage 1. Declines (nullopt) unless \p V is feasible, exactly one of
/// its placements is broken in \p Env, and that placement can shift
/// forward on its node into a window that keeps the deadline and every
/// placed successor's transfer gap intact. The shifted placement keeps
/// its node, duration and economic cost.
std::optional<VariantRepair> repairVariantByShift(const Job &Scheduled,
                                                  const ScheduleVariant &V,
                                                  const RepairInputs &In);

/// Stage 2. Declines unless \p V is feasible, at least one but not all
/// of its critical works lost a placement, and the phase partition is
/// clean (collision repair during the original build may re-extract a
/// task into a later work; such variants escalate to the rebuild). The
/// surviving works' placements are reserved in a scratch grid and the
/// broken works re-run through `ChainAllocator` under the variant's
/// level candidates and bias.
std::optional<VariantRepair> repairVariantByDp(const Job &Scheduled,
                                               const ScheduleVariant &V,
                                               const RepairInputs &In);

} // namespace cws

#endif // CWS_CORE_REPAIR_H
