//===-- core/ChainAllocator.h - DP allocation of one chain ------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic-programming allocator of the critical works method: given
/// one critical work (a chain of tasks), the current partial
/// distribution and the node timelines, it searches "the best
/// combination of available resources" by a DP over (chain position,
/// node) states keeping a Pareto front of (finish time, economic cost)
/// labels — minimizing cost subject to the job's fixed completion time,
/// or minimizing finish time under the Time bias.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_CORE_CHAINALLOCATOR_H
#define CWS_CORE_CHAINALLOCATOR_H

#include "core/Collision.h"
#include "core/CostModel.h"
#include "core/CriticalWork.h"
#include "core/Distribution.h"
#include "core/ParetoFront.h"
#include "resource/DataPolicy.h"
#include "sim/Time.h"
#include "support/SmallVector.h"

#include <cstddef>
#include <vector>

namespace cws {

class Grid;
class Job;

/// What the DP optimizes, subject to the deadline either way.
enum class OptimizationBias {
  /// Minimize economic cost; finish time breaks ties.
  Cost,
  /// Minimize finish time; economic cost breaks ties.
  Time,
};

/// Short name ("cost" / "time").
const char *optimizationBiasName(OptimizationBias Bias);

/// Knobs of one allocation run.
struct AllocatorPolicy {
  /// Node ids the variant may use (the "environment event" it covers).
  std::vector<unsigned> CandidateNodes;
  OptimizationBias Bias = OptimizationBias::Cost;
  /// Economic penalty for placing consecutive chain tasks on different
  /// nodes. Coarse-grain strategies (S3) set this high, gluing chains to
  /// a single node and minimizing data exchanges.
  double NodeSwitchPenalty = 0.0;
  /// Pareto front size cap per (position, node) state.
  size_t MaxFrontSize = 8;
};

/// Allocates critical works into a scratch grid.
///
/// The allocator mutates the grid's timelines (reserving each placement
/// for the given owner) and the data policy's replica memory; callers
/// own both and typically operate on copies while generating a strategy.
class ChainAllocator {
public:
  ChainAllocator(const Job &J, Grid &ScratchGrid, DataPolicy &Policy,
                 const CostModel &Cost, const AllocatorPolicy &Params);

  /// Places every task of \p Work. On success the placements are
  /// appended to \p Dist, reserved in the grid under \p Owner, and any
  /// contention is recorded in \p Collisions. Returns false (leaving all
  /// state untouched) when the chain cannot meet its windows.
  bool allocate(const CriticalWork &Work, Distribution &Dist, Tick Release,
                Tick Deadline, OwnerId Owner,
                std::vector<CollisionRecord> &Collisions);

  /// Cumulative DP work of this allocator instance — Pareto labels
  /// kept and window-violation reruns. Deltas around an `allocate`
  /// call give that call's deterministic work (the caller attributes
  /// them to the `chain.dp` profiler phase).
  uint64_t labelsKept() const { return KeptLabels; }
  uint64_t dpReruns() const { return DpReruns; }

private:
  struct Label {
    Tick Finish;
    double Cost;
    /// Start of this task on this node (Finish - reservation).
    Tick Start;
    /// Back-pointers: candidate-node index and label index at the
    /// previous position; -1 at position 0.
    int32_t PrevNode;
    int32_t PrevLabel;
  };

  /// One (position, node) state's Pareto front. The inline capacity
  /// matches the default `AllocatorPolicy::MaxFrontSize`, so with
  /// default knobs front maintenance never touches the heap.
  using LabelFront = SmallVector<Label, 8>;

  /// Ready time of chain position \p Pos on node \p NodeId considering
  /// placed predecessors only (the immediate chain predecessor is added
  /// by the DP transition).
  Tick externalReady(unsigned TaskId, unsigned NodeId,
                     const Distribution &Dist, Tick Release) const;

  /// Latest feasible finish of \p TaskId on \p NodeId given placed
  /// successors and the deadline.
  Tick latestFinish(unsigned TaskId, unsigned NodeId,
                    const Distribution &Dist, Tick Deadline) const;

  /// Inbound transfer ticks billed from already placed predecessors.
  Tick placedInboundTicks(unsigned TaskId, unsigned NodeId,
                          const Distribution &Dist, unsigned SkipPred) const;

  /// Inserts a label into a Pareto front (sorted by Finish ascending,
  /// Cost strictly descending); drops it when dominated. Thin metrics
  /// wrapper over `paretoInsert` (core/ParetoFront.h).
  void insertLabel(LabelFront &Front, Label L) const;

  const Job &J;
  Grid &G;
  DataPolicy &Policy;
  const CostModel &Cost;
  const AllocatorPolicy &Params;
  mutable uint64_t KeptLabels = 0;
  mutable uint64_t DpReruns = 0;
};

} // namespace cws

#endif // CWS_CORE_CHAINALLOCATOR_H
