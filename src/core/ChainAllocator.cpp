//===-- core/ChainAllocator.cpp - DP allocation of one chain --------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "core/ChainAllocator.h"
#include "job/Job.h"
#include "obs/Metrics.h"
#include "resource/Grid.h"
#include "support/Check.h"

#include <algorithm>
#include <limits>

using namespace cws;

namespace {
/// DP-internal load indicators; the spans around allocate() live in the
/// scheduler, these count the work inside one chain placement.
struct AllocatorMetrics {
  obs::Counter &Labels = obs::Registry::global().counter(
      "cws_chain_labels_total", "Pareto labels inserted by the chain DP");
  obs::Counter &Evictions = obs::Registry::global().counter(
      "cws_chain_front_evictions_total",
      "labels evicted when a Pareto front exceeded its size cap");
  obs::Counter &Reruns = obs::Registry::global().counter(
      "cws_chain_dp_reruns_total",
      "DP re-runs forced by non-adjacent intra-chain precedence");
  static AllocatorMetrics &get() {
    static AllocatorMetrics M;
    return M;
  }
};
} // namespace

const char *cws::optimizationBiasName(OptimizationBias Bias) {
  switch (Bias) {
  case OptimizationBias::Cost:
    return "cost";
  case OptimizationBias::Time:
    return "time";
  }
  CWS_UNREACHABLE("unknown optimization bias");
}

ChainAllocator::ChainAllocator(const Job &J, Grid &ScratchGrid,
                               DataPolicy &Policy, const CostModel &Cost,
                               const AllocatorPolicy &Params)
    : J(J), G(ScratchGrid), Policy(Policy), Cost(Cost), Params(Params) {
  CWS_CHECK(!Params.CandidateNodes.empty(),
            "allocation needs at least one candidate node");
  CWS_CHECK(Params.MaxFrontSize >= 2, "front size cap too small");
}

Tick ChainAllocator::externalReady(unsigned TaskId, unsigned NodeId,
                                   const Distribution &Dist,
                                   Tick Release) const {
  Tick Ready = Release;
  for (size_t EdgeIdx : J.inEdges(TaskId)) {
    const DataEdge &E = J.edge(EdgeIdx);
    const Placement *Src = Dist.find(E.Src);
    if (!Src)
      continue; // Unplaced predecessors belong to later phases.
    Tick Tr = Policy.previewTicks(E.Src, E.BaseTransfer, Src->NodeId, NodeId);
    Ready = std::max(Ready, Src->End + Tr);
  }
  return Ready;
}

Tick ChainAllocator::latestFinish(unsigned TaskId, unsigned NodeId,
                                  const Distribution &Dist,
                                  Tick Deadline) const {
  Tick Latest = Deadline;
  for (size_t EdgeIdx : J.outEdges(TaskId)) {
    const DataEdge &E = J.edge(EdgeIdx);
    const Placement *Dst = Dist.find(E.Dst);
    if (!Dst)
      continue;
    Tick Tr = Policy.previewTicks(TaskId, E.BaseTransfer, NodeId, Dst->NodeId);
    Latest = std::min(Latest, Dst->Start - Tr);
  }
  return Latest;
}

Tick ChainAllocator::placedInboundTicks(unsigned TaskId, unsigned NodeId,
                                        const Distribution &Dist,
                                        unsigned SkipPred) const {
  Tick Sum = 0;
  for (size_t EdgeIdx : J.inEdges(TaskId)) {
    const DataEdge &E = J.edge(EdgeIdx);
    if (E.Src == SkipPred)
      continue;
    const Placement *Src = Dist.find(E.Src);
    if (!Src)
      continue;
    Sum += Policy.billedTicks(E.Src, E.BaseTransfer, Src->NodeId, NodeId);
  }
  return Sum;
}

void ChainAllocator::insertLabel(LabelFront &Front, Label L) const {
  ParetoInsertOutcome Outcome = paretoInsert(Front, L, Params.MaxFrontSize);
  if (!Outcome.Inserted)
    return;
  AllocatorMetrics::get().Labels.add();
  ++KeptLabels;
  if (Outcome.EvictedForCap)
    AllocatorMetrics::get().Evictions.add();
}

namespace {

/// Maximum base transfer over all edges Src -> Dst (parallel edges
/// overlap, so the longest one gates readiness).
Tick chainEdgeBase(const Job &J, unsigned Src, unsigned Dst) {
  Tick Base = -1;
  for (size_t EdgeIdx : J.inEdges(Dst)) {
    const DataEdge &E = J.edge(EdgeIdx);
    if (E.Src == Src)
      Base = std::max(Base, E.BaseTransfer);
  }
  CWS_CHECK(Base >= 0, "chain neighbours are not connected by an edge");
  return Base;
}

} // namespace

bool ChainAllocator::allocate(const CriticalWork &Work, Distribution &Dist,
                              Tick Release, Tick Deadline, OwnerId Owner,
                              std::vector<CollisionRecord> &Collisions) {
  const std::vector<unsigned> &Chain = Work.TaskIds;
  CWS_CHECK(!Chain.empty(), "cannot allocate an empty critical work");
  const std::vector<unsigned> &Cand = Params.CandidateNodes;
  const size_t K = Chain.size();
  const size_t N = Cand.size();

  // Readiness bumps discovered by the post-DP precedence verification of
  // non-adjacent intra-chain edges (see below).
  std::vector<Tick> ExtraReady(K, 0);

  for (int Attempt = 0; Attempt < 4; ++Attempt) {
    // --- Forward DP over (chain position, candidate node). ---
    std::vector<std::vector<LabelFront>> Fronts(K,
                                                std::vector<LabelFront>(N));

    for (size_t NodeIdx = 0; NodeIdx < N; ++NodeIdx) {
      unsigned NodeId = Cand[NodeIdx];
      const ProcessorNode &Node = G.node(NodeId);
      unsigned TaskId = Chain[0];
      Tick Dur = Node.execTicks(J.task(TaskId).RefTicks);
      Tick Ready = std::max(externalReady(TaskId, NodeId, Dist, Release),
                            ExtraReady[0]);
      Tick Start = Node.timeline().earliestFit(Ready, Dur);
      Tick Finish = Start + Dur;
      if (Finish > latestFinish(TaskId, NodeId, Dist, Deadline))
        continue;
      Tick Inbound = placedInboundTicks(TaskId, NodeId, Dist,
                                        /*SkipPred=*/J.taskCount());
      double C = Cost.nodeCost(NodeId, Dur) + Cost.transferCost(Inbound);
      insertLabel(Fronts[0][NodeIdx], {Finish, C, Start, -1, -1});
    }

    for (size_t Pos = 1; Pos < K; ++Pos) {
      unsigned TaskId = Chain[Pos];
      unsigned PrevTask = Chain[Pos - 1];
      Tick EdgeBase = chainEdgeBase(J, PrevTask, TaskId);
      for (size_t PrevIdx = 0; PrevIdx < N; ++PrevIdx) {
        const auto &PrevFront = Fronts[Pos - 1][PrevIdx];
        if (PrevFront.empty())
          continue;
        unsigned PrevNode = Cand[PrevIdx];
        for (size_t NodeIdx = 0; NodeIdx < N; ++NodeIdx) {
          unsigned NodeId = Cand[NodeIdx];
          const ProcessorNode &Node = G.node(NodeId);
          Tick Dur = Node.execTicks(J.task(TaskId).RefTicks);
          Tick ChainTr =
              Policy.previewTicks(PrevTask, EdgeBase, PrevNode, NodeId);
          Tick ChainBill =
              Policy.billedTicks(PrevTask, EdgeBase, PrevNode, NodeId);
          Tick External = std::max(
              externalReady(TaskId, NodeId, Dist, Release), ExtraReady[Pos]);
          Tick Inbound =
              placedInboundTicks(TaskId, NodeId, Dist, /*SkipPred=*/PrevTask);
          Tick Lft = latestFinish(TaskId, NodeId, Dist, Deadline);
          double StepCost = Cost.nodeCost(NodeId, Dur) +
                            Cost.transferCost(ChainBill + Inbound) +
                            (NodeId != PrevNode ? Params.NodeSwitchPenalty
                                                : 0.0);
          for (size_t LabelIdx = 0; LabelIdx < PrevFront.size(); ++LabelIdx) {
            const Label &Prev = PrevFront[LabelIdx];
            Tick Ready = std::max(External, Prev.Finish + ChainTr);
            Tick Start = Node.timeline().earliestFit(Ready, Dur);
            Tick Finish = Start + Dur;
            if (Finish > Lft)
              continue;
            insertLabel(Fronts[Pos][NodeIdx],
                        {Finish, Prev.Cost + StepCost, Start,
                         static_cast<int32_t>(PrevIdx),
                         static_cast<int32_t>(LabelIdx)});
          }
        }
      }
    }

    // --- Select the best terminal label per the optimization bias. ---
    int32_t BestNode = -1;
    int32_t BestLabel = -1;
    Tick BestFinish = std::numeric_limits<Tick>::max();
    double BestCost = std::numeric_limits<double>::max();
    for (size_t NodeIdx = 0; NodeIdx < N; ++NodeIdx) {
      const auto &Front = Fronts[K - 1][NodeIdx];
      for (size_t LabelIdx = 0; LabelIdx < Front.size(); ++LabelIdx) {
        const Label &L = Front[LabelIdx];
        bool Better;
        if (Params.Bias == OptimizationBias::Cost)
          Better = L.Cost < BestCost - 1e-9 ||
                   (L.Cost < BestCost + 1e-9 && L.Finish < BestFinish);
        else
          Better = L.Finish < BestFinish ||
                   (L.Finish == BestFinish && L.Cost < BestCost - 1e-9);
        if (Better) {
          BestNode = static_cast<int32_t>(NodeIdx);
          BestLabel = static_cast<int32_t>(LabelIdx);
          BestFinish = L.Finish;
          BestCost = L.Cost;
        }
      }
    }
    if (BestNode < 0)
      return false; // No feasible completion within the windows.

    // --- Reconstruct the chosen path. ---
    struct Chosen {
      unsigned NodeId;
      Tick Start;
      Tick Finish;
    };
    std::vector<Chosen> Path(K);
    {
      int32_t NodeIdx = BestNode;
      int32_t LabelIdx = BestLabel;
      for (size_t Pos = K; Pos-- > 0;) {
        const Label &L = Fronts[Pos][static_cast<size_t>(NodeIdx)]
                               [static_cast<size_t>(LabelIdx)];
        Path[Pos] = {Cand[static_cast<size_t>(NodeIdx)], L.Start, L.Finish};
        NodeIdx = L.PrevNode;
        LabelIdx = L.PrevLabel;
      }
    }

    // --- Verify non-adjacent intra-chain precedence. The DP links only
    // consecutive chain tasks; a direct edge Chain[i] -> Chain[m] with
    // i < m - 1 can still be violated when its transfer outweighs the
    // via-chain delay. Bump the readiness of the violated position and
    // re-run the DP. ---
    bool Violated = false;
    std::vector<size_t> PosOf(J.taskCount(), SIZE_MAX);
    for (size_t Pos = 0; Pos < K; ++Pos)
      PosOf[Chain[Pos]] = Pos;
    for (size_t Pos = 1; Pos < K; ++Pos) {
      unsigned TaskId = Chain[Pos];
      for (size_t EdgeIdx : J.inEdges(TaskId)) {
        const DataEdge &E = J.edge(EdgeIdx);
        size_t SrcPos = PosOf[E.Src];
        if (SrcPos == SIZE_MAX || SrcPos + 1 >= Pos + 1)
          continue; // Not an earlier chain task, or the adjacent one.
        if (SrcPos + 1 == Pos)
          continue;
        Tick Tr = Policy.previewTicks(E.Src, E.BaseTransfer,
                                      Path[SrcPos].NodeId, Path[Pos].NodeId);
        Tick Needed = Path[SrcPos].Finish + Tr;
        if (Path[Pos].Start < Needed) {
          ExtraReady[Pos] = std::max(ExtraReady[Pos], Needed);
          Violated = true;
        }
      }
    }
    if (Violated) {
      AllocatorMetrics::get().Reruns.add();
      ++DpReruns;
      continue;
    }

    // --- Finalize: detect collisions, reserve, charge, record replicas.
    for (size_t Pos = 0; Pos < K; ++Pos) {
      unsigned TaskId = Chain[Pos];
      unsigned NodeId = Path[Pos].NodeId;
      const ProcessorNode &Node = G.node(NodeId);
      Tick Dur = Path[Pos].Finish - Path[Pos].Start;

      // Recompute the unconstrained ready time to detect contention.
      Tick Ready = std::max(externalReady(TaskId, NodeId, Dist, Release),
                            ExtraReady[Pos]);
      Tick ChainTr = 0;
      Tick ChainBill = 0;
      if (Pos > 0) {
        Tick EdgeBase = chainEdgeBase(J, Chain[Pos - 1], TaskId);
        ChainTr = Policy.previewTicks(Chain[Pos - 1], EdgeBase,
                                      Path[Pos - 1].NodeId, NodeId);
        ChainBill = Policy.billedTicks(Chain[Pos - 1], EdgeBase,
                                       Path[Pos - 1].NodeId, NodeId);
        Ready = std::max(Ready, Path[Pos - 1].Finish + ChainTr);
      }
      if (Path[Pos].Start > Ready) {
        // The preferred slot was occupied: a collision, resolved by
        // shifting the task later on the same node.
        const Interval *Blocking =
            Node.timeline().firstOverlap(Ready, Ready + Dur);
        Collisions.push_back({TaskId, NodeId,
                              Blocking ? Blocking->Owner : 0, Ready,
                              Path[Pos].Start,
                              CollisionResolution::Shifted});
      } else if (Params.Bias == OptimizationBias::Cost) {
        // Check whether a strictly cheaper node was contended: then the
        // collision was resolved by moving the task here.
        for (unsigned Other : Cand) {
          if (Other == NodeId)
            continue;
          const ProcessorNode &Cheap = G.node(Other);
          Tick CheapDur = Cheap.execTicks(J.task(TaskId).RefTicks);
          if (Cost.nodeCost(Other, CheapDur) + 1e-9 >=
              Cost.nodeCost(NodeId, Dur))
            continue;
          Tick CheapReady = externalReady(TaskId, Other, Dist, Release);
          const Interval *Blocking =
              Cheap.timeline().firstOverlap(CheapReady, CheapReady + CheapDur);
          if (Blocking) {
            Collisions.push_back({TaskId, Other, Blocking->Owner, CheapReady,
                                  Path[Pos].Start,
                                  CollisionResolution::Moved});
            break;
          }
        }
      }

      Tick Inbound = placedInboundTicks(
          TaskId, NodeId, Dist,
          /*SkipPred=*/Pos > 0 ? Chain[Pos - 1] : J.taskCount());
      // The node-switch penalty shapes the DP toward coarse placements
      // but is not a real quota charge, so it is excluded here.
      double PlaceCost =
          Cost.nodeCost(NodeId, Dur) + Cost.transferCost(ChainBill + Inbound);

      bool Reserved = G.node(NodeId).timeline().reserve(
          Path[Pos].Start, Path[Pos].Finish, Owner);
      CWS_CHECK(Reserved, "DP produced an overlapping reservation");
      Dist.add({TaskId, NodeId, Path[Pos].Start, Path[Pos].Finish, PlaceCost});

      // Record data movements in the policy's replica memory.
      for (size_t EdgeIdx : J.inEdges(TaskId)) {
        const DataEdge &E = J.edge(EdgeIdx);
        if (const Placement *Src = Dist.find(E.Src); Src && E.Src != TaskId)
          Policy.transferTicks(E.Src, E.BaseTransfer, Src->NodeId, NodeId);
      }
      for (size_t EdgeIdx : J.outEdges(TaskId)) {
        const DataEdge &E = J.edge(EdgeIdx);
        if (const Placement *Dst = Dist.find(E.Dst))
          Policy.transferTicks(TaskId, E.BaseTransfer, NodeId, Dst->NodeId);
      }
    }
    return true;
  }
  return false; // Verification kept failing; treat the chain as unplaceable.
}
